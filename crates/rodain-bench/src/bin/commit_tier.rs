//! COMMITTIER: pipelined `submit` → `CommitFuture` vs blocking `execute`
//! on the real mirrored engine, plus the `Volatile` durability tier as the
//! no-wait floor.
//!
//! Writes `BENCH_COMMITTIER.json` into the output directory and exits
//! non-zero when the tiered-durability commit redesign regresses:
//! pipelined `MirrorAcked` submits must clear 1.5× the committed
//! throughput of blocking `execute` at the same tier.
//!
//! `cargo run -p rodain-bench --release --bin commit_tier [-- --quick]`

use rodain_bench::experiments::{commit_tier, SweepOptions};
use rodain_bench::report::out_dir;

fn main() {
    let report = commit_tier(SweepOptions::from_args());
    report.table().print();

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("BENCH_COMMITTIER.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_COMMITTIER.json");
    println!("json: {path:?}");

    let speedup = report.speedup();
    println!("pipelined / blocking speedup at mirror_acked: {speedup:.2}x");
    if speedup < 1.5 {
        eprintln!("COMMITTIER regression: need speedup >= 1.5 (got {speedup:.2})");
        std::process::exit(1);
    }
}
