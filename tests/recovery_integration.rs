//! Durability and failover-chain tests: contingency logging, mirror disk
//! spooling, cold-start recovery, and the full failure cycle of the paper.

use rodain::db::{MirrorLossPolicy, ReplicationMode, Rodain, TxnOptions};
use rodain::log::{GroupCommitLog, LogStorage, LogStorageConfig};
use rodain::net::InProcTransport;
use rodain::node::{recover_store_from_disk, MirrorConfig, MirrorExit, MirrorNode};
use rodain::store::Store;
use rodain::{ObjectId, Value};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rodain-recovery-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_mirror_config() -> MirrorConfig {
    MirrorConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        peer_timeout: Duration::from_millis(100),
        suspect_rounds: 3,
        snapshot_dir: None,
    }
}

#[test]
fn contingency_log_replays_to_identical_state() {
    let dir = tmpdir("contingency");
    let snapshot_before;
    {
        let db = Rodain::builder()
            .workers(4)
            .contingency_log(&dir)
            .build()
            .unwrap();
        for i in 0..100u64 {
            db.load_initial(ObjectId(i), Value::Int(0));
        }
        // Interleaved concurrent updates.
        let db = Arc::new(db);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let oid = ObjectId((t * 29 + i * 3) % 100);
                    let _ = db.execute(TxnOptions::soft_ms(5_000), move |ctx| {
                        let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                        ctx.write(oid, Value::Int(v + 1))?;
                        Ok(None)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        snapshot_before = db.snapshot();
    } // drop: flush + shutdown

    let cold = recover_store_from_disk(&dir).unwrap();
    // Recovered values equal the pre-crash committed values. (The initial
    // zero-valued objects were loaded outside logging, so compare only
    // objects the log touched — i.e. those with non-zero values — plus
    // confirm no phantom objects appeared.)
    for (oid, obj) in &snapshot_before.objects {
        let recovered = cold.store.read(*oid).map(|(v, _)| v);
        if obj.value != Value::Int(0) {
            assert_eq!(recovered, Some(obj.value.clone()), "{oid:?}");
        }
    }
    assert!(cold.stats.committed > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mirror_disk_spool_supports_cold_restart_of_the_pair() {
    // Two-node mode: the mirror spools the reordered log to disk. After
    // BOTH nodes stop, the disk log alone rebuilds the database.
    let dir = tmpdir("mirror-spool");
    let (primary_side, mirror_side) = InProcTransport::pair();
    let storage = LogStorage::open(LogStorageConfig {
        fsync: false,
        ..LogStorageConfig::new(&dir)
    })
    .unwrap();
    let spool = GroupCommitLog::spawn(storage, 64);
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store,
        Arc::new(mirror_side),
        Some(spool),
        fast_mirror_config(),
    );
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let handle = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });

    {
        let db = Rodain::builder()
            .workers(2)
            .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
            .build()
            .unwrap();
        for i in 0..40u64 {
            db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64 + 1000))?;
                Ok(None)
            })
            .unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while applied.load(Ordering::Acquire) < 40 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    shutdown.store(true, Ordering::Release);
    let (_, report) = handle.join().unwrap();
    assert_eq!(report.txns_applied, 40);

    // Cold start from the mirror's disk log ("even if both nodes fail").
    let cold = recover_store_from_disk(&dir).unwrap();
    assert_eq!(cold.stats.committed, 40);
    assert_eq!(
        cold.store.read(ObjectId(39)).map(|(v, _)| v),
        Some(Value::Int(1039))
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_failure_cycle_mirror_promotes_then_old_primary_rejoins() {
    // The paper's failover story end to end:
    // 1. Primary + Mirror running.
    // 2. Primary dies → mirror promotes to Contingency Primary (its store
    //    is current), serving with sync disk logging.
    // 3. The failed node recovers (from the promoted node's snapshot) and
    //    rejoins as Mirror.
    let dir = tmpdir("failover-chain");
    let (primary_side, mirror_side) = InProcTransport::pair();
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store.clone(),
        Arc::new(mirror_side),
        None,
        fast_mirror_config(),
    );
    let applied = mirror.applied_csn_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });

    // Phase 1: normal operation.
    let db = Rodain::builder()
        .workers(2)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();
    for i in 0..20u64 {
        db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
            ctx.write(ObjectId(i), Value::Int(i as i64))?;
            Ok(None)
        })
        .unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while applied.load(Ordering::Acquire) < 20 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(1));
    }

    // Phase 2: primary crashes (we drop the engine; the link closes).
    drop(db);
    let (exit, _) = mirror_thread.join().unwrap();
    assert_eq!(exit, MirrorExit::PrimaryFailed);

    // Promote: build a contingency engine OVER the mirror's store.
    let promoted = Rodain::builder()
        .workers(2)
        .store(mirror_store)
        .contingency_log(&dir)
        .build()
        .unwrap();
    assert_eq!(promoted.replication_mode(), ReplicationMode::Contingency);
    // The promoted node has the full state and keeps serving.
    assert_eq!(promoted.get(ObjectId(7)), Some(Value::Int(7)));
    promoted
        .execute(TxnOptions::firm_ms(2_000), |ctx| {
            ctx.write(ObjectId(100), Value::Int(100))?;
            Ok(None)
        })
        .unwrap();

    // Phase 3: the failed node comes back and rejoins as Mirror.
    let (new_primary_side, new_mirror_side) = InProcTransport::pair();
    let rejoined_store = Arc::new(Store::new());
    let mut rejoined = MirrorNode::new(
        rejoined_store.clone(),
        Arc::new(new_mirror_side),
        None,
        fast_mirror_config(),
    );
    let rejoined_shutdown = rejoined.shutdown_handle();
    let rejoined_thread = std::thread::spawn(move || {
        rejoined.join().unwrap();
        rejoined.run()
    });
    promoted
        .attach_mirror(
            Arc::new(new_primary_side),
            MirrorLossPolicy::ContinueVolatile,
        )
        .unwrap();
    assert_eq!(promoted.replication_mode(), ReplicationMode::Mirrored);

    promoted
        .execute(TxnOptions::firm_ms(2_000), |ctx| {
            ctx.write(ObjectId(101), Value::Int(101))?;
            Ok(None)
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while rejoined_store.read(ObjectId(101)).is_none() {
        assert!(
            Instant::now() < deadline,
            "rejoined mirror missed the live stream"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Snapshot-era state arrived too: both the pre-crash objects and the
    // contingency-era commit.
    assert_eq!(
        rejoined_store.read(ObjectId(7)).map(|(v, _)| v),
        Some(Value::Int(7))
    );
    assert_eq!(
        rejoined_store.read(ObjectId(100)).map(|(v, _)| v),
        Some(Value::Int(100))
    );
    rejoined_shutdown.store(true, Ordering::Release);
    rejoined_thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_log_and_accelerates_recovery() {
    let log_dir = tmpdir("ckpt-log");
    let snap_dir = tmpdir("ckpt-snap");
    {
        let db = Rodain::builder()
            .workers(2)
            .contingency_log(&log_dir)
            .build()
            .unwrap();
        // Era 1: 30 commits, then a checkpoint.
        for i in 0..30u64 {
            db.execute(TxnOptions::firm_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64))?;
                Ok(None)
            })
            .unwrap();
        }
        let snap_path = db.checkpoint(&snap_dir).unwrap();
        assert!(snap_path.exists());
        // Era 2: 10 more commits after the checkpoint.
        for i in 100..110u64 {
            db.execute(TxnOptions::firm_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64))?;
                Ok(None)
            })
            .unwrap();
        }
    }
    // Checkpoint-aware recovery sees both eras.
    let cold = rodain::node::recover_with_checkpoint(&log_dir, &snap_dir).unwrap();
    assert_eq!(
        cold.store.read(ObjectId(5)).map(|(v, _)| v),
        Some(Value::Int(5))
    );
    assert_eq!(
        cold.store.read(ObjectId(105)).map(|(v, _)| v),
        Some(Value::Int(105))
    );
    // The snapshot covered era 1, so even a plain log replay of whatever
    // remains plus the snapshot is complete; and the snapshot alone holds
    // all 30 era-1 objects.
    let (snapshot, upto, _) = rodain::log::read_latest_snapshot(&snap_dir)
        .unwrap()
        .unwrap();
    assert!(upto.0 >= 30);
    assert!(snapshot.len() >= 30);
    let _ = std::fs::remove_dir_all(&log_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

#[test]
fn checkpoint_in_volatile_mode_still_writes_snapshot() {
    let snap_dir = tmpdir("ckpt-volatile");
    let db = Rodain::builder().workers(1).build().unwrap();
    db.execute(TxnOptions::firm_ms(5_000), |ctx| {
        ctx.write(ObjectId(1), Value::Int(42))?;
        Ok(None)
    })
    .unwrap();
    db.checkpoint(&snap_dir).unwrap();
    let (snapshot, _, _) = rodain::log::read_latest_snapshot(&snap_dir)
        .unwrap()
        .unwrap();
    assert_eq!(snapshot.len(), 1);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

#[test]
fn rejoining_mirror_persists_join_snapshot_for_full_recovery() {
    // A mirror that joins AFTER the primary already holds data only sees
    // post-join commits on its log spool. With `snapshot_dir` set, the
    // join snapshot is persisted too, so snapshot + log tail covers the
    // full database even though the log alone does not.
    let log_dir = tmpdir("join-snap-log");
    let snap_dir = tmpdir("join-snap-ckpt");

    let db = Rodain::builder().workers(2).build().unwrap();
    for i in 0..50u64 {
        db.load_initial(ObjectId(i), Value::Int(i as i64));
    }
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(0), Value::Int(-1))?;
        Ok(None)
    })
    .unwrap();

    // Mirror joins late, with disk spool + snapshot persistence.
    let (primary_side, mirror_side) = InProcTransport::pair();
    let storage = LogStorage::open(LogStorageConfig {
        fsync: false,
        ..LogStorageConfig::new(&log_dir)
    })
    .unwrap();
    let spool = GroupCommitLog::spawn(storage, 64);
    let mirror_store = Arc::new(Store::new());
    let mut config = fast_mirror_config();
    config.snapshot_dir = Some(snap_dir.clone());
    let mut mirror = MirrorNode::new(mirror_store, Arc::new(mirror_side), Some(spool), config);
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let handle = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });
    db.attach_mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .unwrap();

    // Post-join commits stream live.
    db.execute(TxnOptions::firm_ms(2_000), |ctx| {
        ctx.write(ObjectId(100), Value::Int(100))?;
        Ok(None)
    })
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while applied.load(Ordering::Acquire) < 2 {
        assert!(Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(1));
    }
    let expected = db.snapshot();
    drop(db);
    shutdown.store(true, Ordering::Release);
    handle.join().unwrap();

    // Log alone misses the pre-join state…
    let log_only = rodain::node::recover_store_from_disk(&log_dir).unwrap();
    assert_eq!(
        log_only.store.read(ObjectId(5)),
        None,
        "log alone cannot know era 1"
    );
    // …snapshot + log recovers everything.
    let full = rodain::node::recover_with_checkpoint(&log_dir, &snap_dir).unwrap();
    assert_eq!(full.store.snapshot(), expected);
    assert_eq!(
        full.store.read(ObjectId(0)).map(|(v, _)| v),
        Some(Value::Int(-1))
    );
    assert_eq!(
        full.store.read(ObjectId(100)).map(|(v, _)| v),
        Some(Value::Int(100))
    );
    let _ = std::fs::remove_dir_all(&log_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

#[test]
fn torn_disk_tail_only_loses_the_in_flight_transaction() {
    let dir = tmpdir("torn-tail");
    {
        let db = Rodain::builder()
            .workers(1)
            .contingency_log(&dir)
            .build()
            .unwrap();
        for i in 0..5u64 {
            db.execute(TxnOptions::firm_ms(2_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64))?;
                Ok(None)
            })
            .unwrap();
        }
    }
    // Corrupt the tail of the newest segment (simulated crash mid-write).
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    let last = segments.last().unwrap();
    let data = std::fs::read(last).unwrap();
    std::fs::write(last, &data[..data.len().saturating_sub(7)]).unwrap();

    let cold = recover_store_from_disk(&dir).unwrap();
    assert!(cold.torn_tail);
    // At most the final transaction is lost; everything earlier survives.
    assert!(cold.stats.committed >= 4);
    assert_eq!(
        cold.store.read(ObjectId(0)).map(|(v, _)| v),
        Some(Value::Int(0))
    );
    let _ = std::fs::remove_dir_all(&dir);
}
