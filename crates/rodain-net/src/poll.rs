//! Readiness polling for the event-driven server front-end.
//!
//! A [`Poller`] watches a set of file descriptors for read/write
//! readiness: `epoll(7)` on Linux (one kernel object, O(ready) wakeups),
//! `poll(2)` everywhere else on unix (the fd set is rebuilt per wait —
//! fine for the fallback). Both sit behind the same thin raw-syscall shim
//! ([`sys`]) so the crate takes no new external dependency; the shim is
//! the only module in the workspace allowed to use `unsafe` (FFI
//! declarations and calls into libc, each a direct syscall wrapper).
//!
//! Interest is *level-triggered* everywhere: as long as a registered fd
//! is readable/writable and the matching interest is set, `wait` reports
//! it. Backpressure therefore maps directly onto interest management —
//! dropping read interest on a connection stops its events (and, with a
//! full kernel receive buffer, stops the peer via TCP flow control)
//! without any bookkeeping of edge re-arms.
//!
//! A [`Waker`] lets other threads interrupt a blocked `wait` — it is a
//! non-blocking socketpair whose read end is registered like any
//! connection; `wake` writes one byte (saturating: a full pipe already
//! means a pending wakeup).

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Which readiness conditions a registration reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Report when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Registered but silent (parked under backpressure).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer closed — read to find out, per level-triggered
    /// convention).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error / hangup condition; the owner should read (to surface the
    /// error) and close.
    pub error: bool,
}

/// Reusable event buffer for [`Poller::wait`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer reporting at most `capacity` events per wait.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// The events reported by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// Number of events reported by the last wait.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last wait reported nothing (timeout).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// The raw-syscall shim: the only unsafe in the workspace. Every function
/// is a direct wrapper over one libc call with errno converted to
/// `io::Error`; no pointers outlive the call.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::check;
        use std::io;
        use std::os::fd::RawFd;

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        const EPOLL_CLOEXEC: i32 = 0o2000000;

        /// Kernel ABI: packed on x86-64 only (uapi `eventpoll.h`).
        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32)
                -> i32;
        }

        pub fn create() -> io::Result<RawFd> {
            // SAFETY: no pointers; returns a new fd or -1.
            check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
        }

        pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            check(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(
            epfd: RawFd,
            buf: &mut Vec<EpollEvent>,
            max: usize,
            timeout_ms: i32,
        ) -> io::Result<usize> {
            buf.clear();
            buf.reserve(max);
            // SAFETY: the spare capacity holds at least `max` events; the
            // kernel writes `n <= max` of them, which we then mark
            // initialized.
            let n = check(unsafe {
                epoll_wait(epfd, buf.as_mut_ptr(), max as i32, timeout_ms)
            })?;
            // SAFETY: epoll_wait initialized the first `n` entries.
            unsafe { buf.set_len(n as usize) };
            Ok(n as usize)
        }
    }

    /// `poll(2)`, used by the portable fallback poller.
    #[cfg(not(target_os = "linux"))]
    pub mod pollsys {
        use super::check;
        use std::io;

        pub const POLLIN: i16 = 0x001;
        pub const POLLOUT: i16 = 0x004;
        pub const POLLERR: i16 = 0x008;
        pub const POLLHUP: i16 = 0x010;
        pub const POLLNVAL: i16 = 0x020;

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: i32,
            pub events: i16,
            pub revents: i16,
        }

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: libc_nfds, timeout: i32) -> i32;
        }

        // nfds_t is unsigned long on every unix libc we target.
        #[allow(non_camel_case_types)]
        type libc_nfds = u64;

        pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: `fds` is a valid mutable slice for the whole call.
            let n = check(unsafe { poll(fds.as_mut_ptr(), fds.len() as libc_nfds, timeout_ms) })?;
            Ok(n as usize)
        }
    }

    /// Raise `RLIMIT_NOFILE` (soft) to the hard limit; used by the
    /// saturation driver before opening thousands of sockets.
    pub mod rlimit {
        use std::io;

        #[repr(C)]
        #[derive(Clone, Copy)]
        struct Rlimit {
            cur: u64,
            max: u64,
        }

        // RLIMIT_NOFILE is 7 on Linux and the BSDs we care about; 5 on
        // Solaris descendants (not a supported target).
        const RLIMIT_NOFILE: i32 = 7;

        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
        }

        pub fn raise_nofile() -> io::Result<u64> {
            let mut lim = Rlimit { cur: 0, max: 0 };
            // SAFETY: `lim` outlives both calls; plain data in, plain
            // data out.
            if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
                return Err(io::Error::last_os_error());
            }
            if lim.cur < lim.max {
                let want = Rlimit {
                    cur: lim.max,
                    max: lim.max,
                };
                // SAFETY: read-only pointer to stack data.
                if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
                    return Err(io::Error::last_os_error());
                }
                return Ok(lim.max);
            }
            Ok(lim.cur)
        }
    }

    pub fn close_fd(fd: RawFd) {
        extern "C" {
            fn close(fd: i32) -> i32;
        }
        // SAFETY: closing an owned fd exactly once.
        let _ = unsafe { close(fd) };
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }
}

/// Raise this process's open-file soft limit to its hard limit, returning
/// the resulting limit. The saturation experiment calls this before
/// opening thousands of client+server socket pairs; a failure is
/// non-fatal (the driver scales its connection count down).
pub fn raise_nofile_limit() -> io::Result<u64> {
    sys::rlimit::raise_nofile()
}

#[cfg(target_os = "linux")]
use linux_impl as imp;
#[cfg(not(target_os = "linux"))]
use poll_impl as imp;

/// A level-triggered readiness poller over raw fds (see module docs).
///
/// All mutation (`register` / `modify` / `deregister`) is safe from any
/// thread; `wait` is intended for a single owning loop thread.
pub struct Poller {
    inner: imp::Inner,
}

impl Poller {
    /// Create a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: imp::Inner::new()?,
        })
    }

    /// Start watching `fd`, reporting readiness under `token`. One
    /// registration per fd; the fd must outlive the registration.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Change an existing registration's interest set (the backpressure
    /// lever: `Interest::NONE` parks the fd without forgetting it).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stop watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Block until at least one registered fd is ready or `timeout`
    /// elapses (`None` = indefinitely). Fills `events`; returns the
    /// number reported.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        // Round up so a 100µs timeout does not spin as 0ms.
        Some(t) => t.as_millis().min(i32::MAX as u128) as i32 + i32::from(t.subsec_nanos() % 1_000_000 != 0),
        None => -1,
    }
}

#[cfg(target_os = "linux")]
mod linux_impl {
    use super::sys::epoll::{
        self, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLL_CTL_ADD, EPOLL_CTL_DEL,
        EPOLL_CTL_MOD,
    };
    use super::{sys, timeout_ms, Event, Events, Interest};
    use parking_lot::Mutex;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub struct Inner {
        epfd: RawFd,
        /// Scratch buffer for raw kernel events, reused across waits.
        buf: Mutex<Vec<EpollEvent>>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    impl Inner {
        pub fn new() -> io::Result<Inner> {
            Ok(Inner {
                epfd: epoll::create()?,
                buf: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            epoll::ctl(self.epfd, EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            epoll::ctl(self.epfd, EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            epoll::ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let mut buf = self.buf.lock();
            let max = events.capacity;
            let n = match epoll::wait(self.epfd, &mut buf, max, timeout_ms(timeout)) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            events.inner.clear();
            for raw in buf.iter().take(n) {
                let bits = raw.events;
                events.inner.push(Event {
                    token: raw.data,
                    readable: bits & (EPOLLIN | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(events.inner.len())
        }
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod poll_impl {
    use super::sys::pollsys::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
    use super::{timeout_ms, Event, Events, Interest};
    use parking_lot::Mutex;
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Portable fallback: the registration table is rebuilt into a
    /// `pollfd` array on every wait. O(registered) per wait — acceptable
    /// for the non-Linux development case this path serves.
    pub struct Inner {
        registry: Mutex<BTreeMap<RawFd, (u64, Interest)>>,
    }

    impl Inner {
        pub fn new() -> io::Result<Inner> {
            Ok(Inner {
                registry: Mutex::new(BTreeMap::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registry.lock();
            if reg.insert(fd, (token, interest)).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registry.lock();
            match reg.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            match self.registry.lock().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let (mut fds, tokens): (Vec<PollFd>, Vec<u64>) = {
                let reg = self.registry.lock();
                let mut fds = Vec::with_capacity(reg.len());
                let mut tokens = Vec::with_capacity(reg.len());
                for (&fd, &(token, interest)) in reg.iter() {
                    let mut ev = 0i16;
                    if interest.read {
                        ev |= POLLIN;
                    }
                    if interest.write {
                        ev |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events: ev,
                        revents: 0,
                    });
                    tokens.push(token);
                }
                (fds, tokens)
            };
            let n = match pollsys::poll_fds(&mut fds, timeout_ms(timeout)) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            events.inner.clear();
            if n > 0 {
                for (pfd, &token) in fds.iter().zip(tokens.iter()) {
                    let bits = pfd.revents;
                    if bits == 0 {
                        continue;
                    }
                    events.inner.push(Event {
                        token,
                        readable: bits & (POLLIN | POLLHUP) != 0,
                        writable: bits & POLLOUT != 0,
                        error: bits & (POLLERR | POLLHUP | POLLNVAL) != 0,
                    });
                    if events.inner.len() == events.capacity {
                        break;
                    }
                }
            }
            Ok(events.inner.len())
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`] (see module docs).
pub struct Waker {
    /// Write side, used by any thread.
    tx: UnixStream,
    /// Read side, registered with the poller; kept here so its fd stays
    /// alive as long as the registration.
    rx: UnixStream,
}

impl Waker {
    /// Create a waker and register its read side under `token`.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poller.register(rx.as_raw_fd(), token, Interest::READ)?;
        Ok(Waker { tx, rx })
    }

    /// Wake the poller. Cheap and saturating: a full pipe means a wakeup
    /// is already pending, which is all we need.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drain pending wakeup bytes; call when the waker's token reports
    /// readable.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn reports_readable_on_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing yet: a short wait times out empty.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("readable");
        assert!(ev.readable);

        let mut server = server;
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }

    #[test]
    fn interest_none_silences_a_ready_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"x").unwrap();

        let poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        // Park it: data still pending, but no events — the backpressure
        // contract (stop reading without losing buffered bytes).
        poller
            .modify(server.as_raw_fd(), 1, Interest::NONE)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        // Re-arm: the level-triggered report returns immediately.
        poller
            .modify(server.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
    }

    #[test]
    fn waker_interrupts_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 0).unwrap());
        let remote = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake();
            remote.wake(); // saturating: double-wake is fine
        });
        let mut events = Events::with_capacity(4);
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "woke via waker");
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        // Join first so both wake bytes are in the pipe before draining —
        // otherwise the second wake can land after the drain.
        t.join().unwrap();
        waker.drain();
        // Drained: the next wait times out instead of spinning on the
        // leftover byte.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn write_interest_reports_writable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(client.as_raw_fd(), 3, Interest::BOTH)
            .unwrap();
        let mut events = Events::with_capacity(4);
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        poller.deregister(client.as_raw_fd()).unwrap();
    }
}
