//! Quickstart: a RODAIN primary/mirror pair in one process.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Demonstrates the paper's headline idea end to end: transactions commit
//! once their redo log records are *on the mirror node* (one message round
//! trip) rather than on a disk, the mirror maintains a live copy of the
//! database, and when the primary dies the mirror's copy is current.

use rodain::db::{MirrorLossPolicy, Rodain, TxnOptions};
use rodain::net::InProcTransport;
use rodain::node::{MirrorConfig, MirrorNode};
use rodain::store::Store;
use rodain::{ObjectId, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. A transport pair: in production this is a TCP link between two
    //    machines (see the tcp_cluster example); here both nodes share a
    //    process.
    let (primary_side, mirror_side) = InProcTransport::pair();

    // 2. Start the Mirror Node: it joins (receiving a snapshot) and then
    //    applies the shipped log stream to its database copy.
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store.clone(),
        Arc::new(mirror_side),
        None, // add a GroupCommitLog here to also spool the log to disk
        MirrorConfig::default(),
    );
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().expect("mirror join");
        mirror.run()
    });

    // 3. Start the primary engine, shipping logs to the mirror.
    let db = Rodain::builder()
        .workers(4)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .expect("start primary");

    // 4. Load some data and run real-time transactions.
    db.load_initial(ObjectId(1), Value::Int(0));
    let t0 = Instant::now();
    let mut total_commit_wait = Duration::ZERO;
    for i in 0..1_000i64 {
        let receipt = db
            .execute(TxnOptions::firm_ms(50), move |ctx| {
                let v = ctx.read(ObjectId(1))?.unwrap().as_int().unwrap();
                ctx.write(ObjectId(1), Value::Int(v + 1))?;
                Ok(None)
            })
            .expect("commit");
        total_commit_wait += receipt.commit_wait;
        if i == 0 {
            println!(
                "first commit: csn={} ser_ts={} commit_wait={:?}",
                receipt.csn, receipt.ser_ts, receipt.commit_wait
            );
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "1000 firm-deadline commits in {elapsed:?} \
         (mean commit wait {:?} — one mirror round trip, no disk in the path)",
        total_commit_wait / 1_000
    );

    // 5. The mirror copy is current.
    while applied.load(Ordering::Acquire) < 1_000 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mirror_value = mirror_store.read(ObjectId(1)).unwrap().0;
    println!("primary value: {:?}", db.get(ObjectId(1)).unwrap());
    println!("mirror  value: {mirror_value:?} (hot stand-by is current)");
    assert_eq!(db.get(ObjectId(1)), Some(mirror_value));

    println!("engine stats: {:#?}", db.stats());
    shutdown.store(true, Ordering::Release);
    let (_, report) = mirror_thread.join().unwrap();
    println!(
        "mirror report: {} txns applied, {} acks sent",
        report.txns_applied, report.acks_sent
    );
}
