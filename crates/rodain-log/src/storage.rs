//! Segmented append-only disk log.

use crate::codec::{encode_record, CodecError, FrameDecoder};
use crate::record::LogRecord;
use crate::record::RecordKind;
use bytes::Bytes;
use rodain_occ::Csn;
use rodain_store::TxnId;
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const SEGMENT_MAGIC: &[u8; 8] = b"RODAINLG";
const SEGMENT_VERSION: u32 = 1;
const HEADER_LEN: u64 = 8 + 4 + 8;

/// Configuration of the disk log.
#[derive(Clone, Debug)]
pub struct LogStorageConfig {
    /// Directory holding the segment files.
    pub dir: PathBuf,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// Issue `fsync` on [`LogStorage::flush`]. Contingency mode requires
    /// it (the disk is the only stable storage); the mirror's asynchronous
    /// log writer can trade it for throughput.
    pub fsync: bool,
}

impl LogStorageConfig {
    /// Sensible defaults rooted at `dir`: 64 MiB segments, fsync on.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogStorageConfig {
            dir: dir.into(),
            segment_bytes: 64 * 1024 * 1024,
            fsync: true,
        }
    }
}

/// Disk-log statistics. Every field is monotone except
/// [`StorageStats::on_disk_bytes`], which shrinks when checkpoint
/// truncation deletes segments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Records appended.
    pub records: u64,
    /// Payload bytes appended (including framing).
    pub bytes: u64,
    /// Explicit flushes performed.
    pub flushes: u64,
    /// Segments created over the storage lifetime.
    pub segments_created: u64,
    /// Segments deleted by checkpoint truncation.
    pub segments_truncated: u64,
    /// Bytes currently occupied on disk across all segments (headers
    /// included). Grows with appends, shrinks with truncation — the
    /// checkpointer's `log_bytes_trigger` watches this.
    pub on_disk_bytes: u64,
}

/// Abstraction over the disk half of the log pipeline, so the group-commit
/// writer can run over the real [`LogStorage`] or a fault-injecting wrapper
/// (`FaultyStorage` in the chaos harness).
///
/// Implementations own their buffering; `append_batch` may defer I/O until
/// `flush`, which must make every appended record durable (subject to the
/// backend's fsync policy).
pub trait StorageBackend: Send {
    /// Append a batch of records (possibly buffered).
    fn append_batch(&mut self, records: &[LogRecord]) -> io::Result<()>;

    /// Flush buffered records to stable storage.
    fn flush(&mut self) -> io::Result<()>;

    /// Checkpoint support: delete closed segments fully below `upto`;
    /// returns how many were removed.
    fn truncate_before(&mut self, upto: Csn) -> io::Result<usize>;

    /// [`StorageBackend::truncate_before`], but keep the newest `retain`
    /// otherwise-deletable segments as a safety margin
    /// (`CheckpointPolicy::retain_segments`). The default implementation
    /// is conservative: with a non-zero `retain` it deletes nothing, so a
    /// backend that has not opted in can never over-delete.
    fn truncate_before_retaining(&mut self, upto: Csn, retain: usize) -> io::Result<usize> {
        if retain == 0 {
            self.truncate_before(upto)
        } else {
            Ok(0)
        }
    }

    /// Iterate every record, oldest first (flushing first so buffered
    /// records are visible).
    fn iter(&mut self) -> io::Result<RecordIter>;

    /// Statistics snapshot.
    fn stats(&self) -> StorageStats;
}

impl StorageBackend for LogStorage {
    fn append_batch(&mut self, records: &[LogRecord]) -> io::Result<()> {
        LogStorage::append_batch(self, records)
    }

    fn flush(&mut self) -> io::Result<()> {
        LogStorage::flush(self)
    }

    fn truncate_before(&mut self, upto: Csn) -> io::Result<usize> {
        LogStorage::truncate_before(self, upto)
    }

    fn truncate_before_retaining(&mut self, upto: Csn, retain: usize) -> io::Result<usize> {
        LogStorage::truncate_before_retaining(self, upto, retain)
    }

    fn iter(&mut self) -> io::Result<RecordIter> {
        LogStorage::iter(self)
    }

    fn stats(&self) -> StorageStats {
        LogStorage::stats(self)
    }
}

/// Append-only, CRC-framed, segmented log storage — the "secondary media"
/// of paper §3, holding the reordered log stream so the database survives
/// simultaneous failure of both nodes.
pub struct LogStorage {
    cfg: LogStorageConfig,
    closed: Vec<(u64, PathBuf)>,
    writer: BufWriter<File>,
    current_seq: u64,
    current_path: PathBuf,
    current_bytes: u64,
    /// The transaction whose write records are mid-append (its commit or
    /// abort not yet seen). Rotation never splits it: a full segment
    /// rotates only before a record of a *different* transaction. That
    /// keeps every commit record in the same segment as its writes — the
    /// invariant that makes whole-segment truncation safe (DESIGN.md §15).
    /// Callers must append each transaction's records contiguously (every
    /// producer in this codebase does: group commit appends per-txn
    /// batches, and the mirror reorders before storing).
    open_txn: Option<TxnId>,
    stats: StorageStats,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:010}.rodainlog"))
}

fn parse_segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("seg-")?.strip_suffix(".rodainlog")?;
    rest.parse().ok()
}

fn write_header(file: &mut impl Write, seq: u64) -> io::Result<()> {
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&SEGMENT_VERSION.to_le_bytes())?;
    file.write_all(&seq.to_le_bytes())?;
    Ok(())
}

fn check_header(reader: &mut impl Read, path: &Path) -> io::Result<u64> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != SEGMENT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: bad segment magic", path.display()),
        ));
    }
    let mut version = [0u8; 4];
    reader.read_exact(&mut version)?;
    if u32::from_le_bytes(version) != SEGMENT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: unsupported segment version", path.display()),
        ));
    }
    let mut seq = [0u8; 8];
    reader.read_exact(&mut seq)?;
    Ok(u64::from_le_bytes(seq))
}

impl LogStorage {
    /// Open (creating the directory if needed). Existing segments are kept
    /// as closed history; appends go to a fresh segment.
    pub fn open(cfg: LogStorageConfig) -> io::Result<Self> {
        fs::create_dir_all(&cfg.dir)?;
        let mut closed: Vec<(u64, PathBuf)> = fs::read_dir(&cfg.dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                parse_segment_seq(&path).map(|seq| (seq, path))
            })
            .collect();
        closed.sort_unstable_by_key(|(seq, _)| *seq);
        let next_seq = closed.last().map(|(seq, _)| seq + 1).unwrap_or(1);
        let mut closed_bytes = 0u64;
        for (_, path) in &closed {
            closed_bytes += fs::metadata(path)?.len();
        }
        let current_path = segment_path(&cfg.dir, next_seq);
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&current_path)?;
        let mut writer = BufWriter::new(file);
        write_header(&mut writer, next_seq)?;
        Ok(LogStorage {
            cfg,
            closed,
            writer,
            current_seq: next_seq,
            current_path,
            current_bytes: HEADER_LEN,
            open_txn: None,
            stats: StorageStats {
                segments_created: 1,
                on_disk_bytes: closed_bytes + HEADER_LEN,
                ..StorageStats::default()
            },
        })
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        if self.cfg.fsync {
            self.writer.get_ref().sync_data()?;
        }
        self.closed
            .push((self.current_seq, self.current_path.clone()));
        self.current_seq += 1;
        self.current_path = segment_path(&self.cfg.dir, self.current_seq);
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&self.current_path)?;
        self.writer = BufWriter::new(file);
        write_header(&mut self.writer, self.current_seq)?;
        self.current_bytes = HEADER_LEN;
        self.stats.segments_created += 1;
        self.stats.on_disk_bytes += HEADER_LEN;
        Ok(())
    }

    /// Append one record (buffered; call [`LogStorage::flush`] to make it
    /// durable).
    ///
    /// A full segment rotates only between transactions: a transaction's
    /// write records must share a segment with their commit record, or
    /// truncating the earlier segment would orphan the commit. A
    /// transaction larger than `segment_bytes` overshoots the limit
    /// rather than splitting.
    pub fn append(&mut self, record: &LogRecord) -> io::Result<()> {
        if self.current_bytes >= self.cfg.segment_bytes
            && self.open_txn.is_none_or(|open| open != record.txn)
        {
            self.rotate()?;
        }
        self.open_txn = match record.kind {
            RecordKind::Write { .. } => Some(record.txn),
            _ => None,
        };
        let frame = encode_record(record);
        self.writer.write_all(&frame)?;
        self.current_bytes += frame.len() as u64;
        self.stats.records += 1;
        self.stats.bytes += frame.len() as u64;
        self.stats.on_disk_bytes += frame.len() as u64;
        Ok(())
    }

    /// Append a batch of records.
    pub fn append_batch(&mut self, records: &[LogRecord]) -> io::Result<()> {
        for r in records {
            self.append(r)?;
        }
        Ok(())
    }

    /// Flush buffered records to the OS (and the platter, when `fsync`).
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        if self.cfg.fsync {
            self.writer.get_ref().sync_data()?;
        }
        self.stats.flushes += 1;
        Ok(())
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> StorageStats {
        self.stats
    }

    /// Paths of every segment, oldest first (closed then current).
    #[must_use]
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        let mut out: Vec<PathBuf> = self.closed.iter().map(|(_, p)| p.clone()).collect();
        out.push(self.current_path.clone());
        out
    }

    /// Iterate every record across all segments, oldest first. The caller
    /// should [`LogStorage::flush`] first so buffered records are visible.
    /// A torn tail in the *last* segment ends the iteration silently;
    /// corruption anywhere else surfaces as an `Err` item.
    pub fn iter(&mut self) -> io::Result<RecordIter> {
        self.flush()?;
        Ok(RecordIter::over(self.segment_paths()))
    }

    /// Segment files of `dir`, oldest first.
    pub fn segment_files(dir: impl AsRef<Path>) -> io::Result<Vec<PathBuf>> {
        let mut segments: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
            .filter_map(|entry| {
                let path = entry.ok()?.path();
                parse_segment_seq(&path).map(|seq| (seq, path))
            })
            .collect();
        segments.sort_unstable_by_key(|(seq, _)| *seq);
        Ok(segments.into_iter().map(|(_, p)| p).collect())
    }

    /// Scan a directory's segments without opening a writer (recovery of a
    /// dead node's log).
    pub fn scan_dir(dir: impl AsRef<Path>) -> io::Result<RecordIter> {
        Ok(RecordIter::over(Self::segment_files(dir)?))
    }

    /// Scan a directory's segments as raw checksum-verified frame payloads
    /// (the input of partitioned replay, which defers record decoding to
    /// the partition workers).
    pub fn scan_dir_frames(dir: impl AsRef<Path>) -> io::Result<FrameIter> {
        Ok(FrameIter::over(Self::segment_files(dir)?))
    }

    /// Checkpoint truncation: delete every *closed* segment all of whose
    /// commit records lie below `upto` (their effects are covered by a
    /// snapshot). Segments containing no commit records at all are kept
    /// conservatively unless they are older than a deletable one.
    pub fn truncate_before(&mut self, upto: Csn) -> io::Result<usize> {
        self.truncate_before_retaining(upto, 0)
    }

    /// [`LogStorage::truncate_before`], but keep the newest `retain`
    /// otherwise-deletable segments on disk as a safety margin. Because
    /// segments are deleted oldest-first, the retained ones are exactly
    /// the `retain` GC-eligible segments closest to the checkpoint
    /// boundary.
    pub fn truncate_before_retaining(&mut self, upto: Csn, retain: usize) -> io::Result<usize> {
        self.flush()?;
        let mut deletable = 0usize;
        for (_, path) in &self.closed {
            let mut max_csn = None;
            let mut iter = RecordIter::over(vec![path.clone()]);
            let mut clean = true;
            for item in &mut iter {
                match item {
                    Ok(rec) => {
                        if let RecordKind::Commit { csn, .. } = rec.kind {
                            max_csn = Some(max_csn.map_or(csn, |m: Csn| m.max(csn)));
                        }
                    }
                    Err(_) => {
                        clean = false;
                        break;
                    }
                }
            }
            match (clean, max_csn) {
                (true, Some(max)) if max < upto => deletable += 1,
                _ => break, // stop at the first segment we must keep
            }
        }
        let deletable = deletable.saturating_sub(retain);
        for (_, path) in self.closed.drain(..deletable) {
            let len = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(path)?;
            self.stats.segments_truncated += 1;
            self.stats.on_disk_bytes = self.stats.on_disk_bytes.saturating_sub(len);
        }
        Ok(deletable)
    }
}

impl std::fmt::Debug for LogStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStorage")
            .field("dir", &self.cfg.dir)
            .field("segments", &(self.closed.len() + 1))
            .field("records", &self.stats.records)
            .finish()
    }
}

/// Streaming iterator over the checksum-verified frame payloads of a
/// segment list — the shared substrate of sequential and partitioned
/// replay.
///
/// ## The dirty-log contract
///
/// The final segment of a crashed node's log legitimately ends mid-frame:
/// the group-commit writer died partway through an append, and the affected
/// transaction was never acknowledged. Such a **torn tail** — the last
/// frame incomplete, or checksum-failing and running exactly to end of
/// file — ends the scan silently (`torn_tail()` reports it, and
/// `torn_tail_bytes()` how much was dropped).
///
/// Everything else is **corruption** and fails loudly with the segment
/// path and byte offset: a bad frame *followed by more data* (the log
/// kept growing past it, so the damage cannot be an in-flight append), or
/// any bad/incomplete frame in a non-final segment.
pub struct FrameIter {
    files: VecDeque<PathBuf>,
    reader: Option<BufReader<File>>,
    current_path: Option<PathBuf>,
    /// Bytes fed into the decoder from the current segment.
    fed: u64,
    decoder: FrameDecoder,
    buf: Vec<u8>,
    done: bool,
    torn: bool,
    torn_bytes: u64,
    segments_scanned: u64,
}

impl FrameIter {
    pub(crate) fn over(files: Vec<PathBuf>) -> Self {
        FrameIter {
            files: files.into(),
            reader: None,
            current_path: None,
            fed: 0,
            decoder: FrameDecoder::new(),
            buf: vec![0u8; 64 * 1024],
            done: false,
            torn: false,
            torn_bytes: 0,
            segments_scanned: 0,
        }
    }

    /// Whether the scan ended at a torn tail rather than a clean end.
    #[must_use]
    pub fn torn_tail(&self) -> bool {
        self.torn
    }

    /// Bytes discarded from the torn tail (0 when the log ended cleanly).
    #[must_use]
    pub fn torn_tail_bytes(&self) -> u64 {
        self.torn_bytes
    }

    /// Segment files opened so far.
    #[must_use]
    pub fn segments_scanned(&self) -> u64 {
        self.segments_scanned
    }

    /// Byte offset (within the current segment) of the frame at the head
    /// of the decode buffer.
    fn frame_offset(&self) -> u64 {
        HEADER_LEN + self.fed - self.decoder.buffered() as u64
    }

    fn corruption_error(&self, detail: impl std::fmt::Display) -> io::Error {
        let segment = self
            .current_path
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "<unknown segment>".into());
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "mid-log corruption in {segment} at offset {}: {detail}",
                self.frame_offset()
            ),
        )
    }

    fn open_next(&mut self) -> io::Result<bool> {
        let Some(path) = self.files.pop_front() else {
            return Ok(false);
        };
        let file = File::open(&path)?;
        let mut reader = BufReader::new(file);
        check_header(&mut reader, &path)?;
        self.reader = Some(reader);
        self.current_path = Some(path);
        self.fed = 0;
        self.decoder = FrameDecoder::new();
        self.segments_scanned += 1;
        Ok(true)
    }

    /// Pull the remainder of the current segment into the decoder, so a
    /// failing frame can be classified against true end-of-file.
    fn drain_current(&mut self) -> io::Result<()> {
        if let Some(reader) = self.reader.as_mut() {
            loop {
                let n = reader.read(&mut self.buf)?;
                if n == 0 {
                    break;
                }
                self.decoder.feed(&self.buf[..n]);
                self.fed += n as u64;
            }
        }
        Ok(())
    }

    /// Classify a frame-level decode failure per the dirty-log contract.
    fn classify_failure(&mut self, err: CodecError) -> Option<io::Result<Bytes>> {
        self.done = true;
        if self.files.is_empty() {
            // Final segment: the damage is a tolerable torn tail only if
            // the failing frame is checksum-damaged and runs exactly to
            // end-of-file — i.e. it can plausibly be the in-flight append
            // the crash interrupted. Anything with data *after* the bad
            // frame, or with an unparseable length field, is corruption.
            if let Err(e) = self.drain_current() {
                return Some(Err(e));
            }
            let runs_to_eof = self.decoder.pending_frame_extent() == Some(self.decoder.buffered());
            if matches!(err, CodecError::BadChecksum) && runs_to_eof {
                self.torn = true;
                self.torn_bytes = self.decoder.buffered() as u64;
                return None;
            }
        }
        Some(Err(self.corruption_error(err)))
    }
}

impl Iterator for FrameIter {
    type Item = io::Result<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            // Drain complete frames first.
            match self.decoder.next_payload() {
                Ok(Some(payload)) => return Some(Ok(payload)),
                Ok(None) => {}
                Err(err) => return self.classify_failure(err),
            }
            // Need more bytes.
            if self.reader.is_none() {
                match self.open_next() {
                    Ok(true) => continue,
                    Ok(false) => {
                        self.done = true;
                        if self.decoder.buffered() > 0 {
                            self.torn = true;
                            self.torn_bytes = self.decoder.buffered() as u64;
                        }
                        return None;
                    }
                    Err(err) => {
                        self.done = true;
                        return Some(Err(err));
                    }
                }
            }
            let n = match self.reader.as_mut().expect("reader").read(&mut self.buf) {
                Ok(n) => n,
                Err(err) => {
                    self.done = true;
                    return Some(Err(err));
                }
            };
            if n == 0 {
                // End of this segment.
                if self.decoder.buffered() > 0 {
                    self.done = true;
                    if self.files.is_empty() {
                        // Incomplete final frame: the classic torn tail.
                        self.torn = true;
                        self.torn_bytes = self.decoder.buffered() as u64;
                        return None;
                    }
                    return Some(Err(
                        self.corruption_error("incomplete frame inside a non-final segment")
                    ));
                }
                self.reader = None;
                continue;
            }
            self.decoder.feed(&self.buf[..n]);
            self.fed += n as u64;
        }
    }
}

/// Streaming iterator over the records of a segment list: [`FrameIter`]
/// plus per-frame record decoding. Inherits the dirty-log contract.
pub struct RecordIter {
    frames: FrameIter,
}

impl RecordIter {
    pub(crate) fn over(files: Vec<PathBuf>) -> Self {
        RecordIter {
            frames: FrameIter::over(files),
        }
    }

    /// Whether the iteration ended at a torn tail (incomplete or
    /// checksum-failing final frame) rather than a clean segment end.
    #[must_use]
    pub fn torn_tail(&self) -> bool {
        self.frames.torn_tail()
    }

    /// Bytes discarded from the torn tail (0 when the log ended cleanly).
    #[must_use]
    pub fn torn_tail_bytes(&self) -> u64 {
        self.frames.torn_tail_bytes()
    }

    /// Segment files opened so far.
    #[must_use]
    pub fn segments_scanned(&self) -> u64 {
        self.frames.segments_scanned()
    }
}

impl Iterator for RecordIter {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.frames.next()? {
            Ok(payload) => Some(crate::codec::decode_record(payload).map_err(|err| {
                // A frame whose checksum verified but whose payload does
                // not parse was *written* damaged: always corruption.
                self.frames.done = true;
                self.frames.corruption_error(err)
            })),
            Err(err) => Some(Err(err)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Lsn, RecordKind};
    use rodain_store::{ObjectId, Ts, TxnId, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-log-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(lsn: u64, txn: u64, oid: u64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(oid as i64),
            },
        }
    }

    fn commit(lsn: u64, txn: u64, csn: u64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn),
                n_writes: 0,
            },
        }
    }

    #[test]
    fn append_flush_read_back() {
        let dir = tmpdir("roundtrip");
        let mut storage = LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        })
        .unwrap();
        let records: Vec<_> = (1..=10u64).map(|i| rec(i, i, i * 10)).collect();
        storage.append_batch(&records).unwrap();
        storage.flush().unwrap();
        let got: Vec<_> = storage.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        assert_eq!(storage.stats().records, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_spans_segments() {
        let dir = tmpdir("rotate");
        let mut storage = LogStorage::open(LogStorageConfig {
            segment_bytes: 256, // tiny: force rotation
            fsync: false,
            dir: dir.clone(),
        })
        .unwrap();
        let records: Vec<_> = (1..=50u64).map(|i| rec(i, i, i)).collect();
        storage.append_batch(&records).unwrap();
        storage.flush().unwrap();
        assert!(storage.stats().segments_created > 1);
        let got: Vec<_> = storage.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_preserves_history() {
        let dir = tmpdir("reopen");
        let cfg = LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        };
        {
            let mut s = LogStorage::open(cfg.clone()).unwrap();
            s.append(&rec(1, 1, 1)).unwrap();
            s.flush().unwrap();
        }
        let mut s2 = LogStorage::open(cfg).unwrap();
        s2.append(&rec(2, 2, 2)).unwrap();
        let got: Vec<_> = s2.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].lsn, Lsn(1));
        assert_eq!(got[1].lsn, Lsn(2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = tmpdir("torn");
        let cfg = LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        };
        let path;
        {
            let mut s = LogStorage::open(cfg).unwrap();
            s.append(&rec(1, 1, 1)).unwrap();
            s.append(&rec(2, 2, 2)).unwrap();
            s.flush().unwrap();
            path = s.segment_paths().pop().unwrap();
        }
        // Chop off the final 3 bytes: the last frame is torn.
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        let first = iter.next().unwrap().unwrap();
        assert_eq!(first.lsn, Lsn(1));
        assert!(iter.next().is_none());
        assert!(iter.torn_tail());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_reports_dropped_bytes() {
        let dir = tmpdir("tornbytes");
        let cfg = LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        };
        let path;
        let full_len;
        {
            let mut s = LogStorage::open(cfg).unwrap();
            s.append(&rec(1, 1, 1)).unwrap();
            s.append(&rec(2, 2, 2)).unwrap();
            s.flush().unwrap();
            path = s.segment_paths().pop().unwrap();
            full_len = fs::metadata(&path).unwrap().len();
        }
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        assert!(iter.next().unwrap().is_ok());
        assert!(iter.next().is_none());
        assert!(iter.torn_tail());
        // The second frame minus the 3 chopped bytes was dropped.
        let frame2 = full_len - HEADER_LEN - encode_record(&rec(1, 1, 1)).len() as u64;
        assert_eq!(iter.torn_tail_bytes(), frame2 - 3);
        assert_eq!(iter.segments_scanned(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_final_frame_at_eof_is_a_torn_tail() {
        // A checksum-failing final frame that runs exactly to end-of-file
        // can be the append the crash interrupted: truncate-and-continue.
        let dir = tmpdir("dmgfinal");
        let cfg = LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        };
        let path;
        {
            let mut s = LogStorage::open(cfg).unwrap();
            s.append(&rec(1, 1, 1)).unwrap();
            s.append(&rec(2, 2, 2)).unwrap();
            s.flush().unwrap();
            path = s.segment_paths().pop().unwrap();
        }
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF; // damage the last byte of the final frame
        fs::write(&path, &data).unwrap();
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        assert!(iter.next().unwrap().is_ok());
        assert!(iter.next().is_none());
        assert!(iter.torn_tail());
        assert!(iter.torn_tail_bytes() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_log_corruption_fails_with_segment_and_offset() {
        // Damage the *first* frame while a second, intact frame follows:
        // that cannot be an interrupted append and must fail loudly.
        let dir = tmpdir("midlog");
        let cfg = LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(&dir)
        };
        let path;
        {
            let mut s = LogStorage::open(cfg).unwrap();
            s.append(&rec(1, 1, 1)).unwrap();
            s.append(&rec(2, 2, 2)).unwrap();
            s.flush().unwrap();
            path = s.segment_paths().pop().unwrap();
        }
        let mut data = fs::read(&path).unwrap();
        // First frame payload starts after segment header + 8-byte frame
        // header; flip a byte well inside it.
        let target = HEADER_LEN as usize + 12;
        data[target] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        let err = iter.next().unwrap().unwrap_err();
        assert!(!iter.torn_tail());
        let msg = err.to_string();
        assert!(msg.contains("mid-log corruption"), "{msg}");
        assert!(msg.contains("seg-0000000001.rodainlog"), "{msg}");
        assert!(msg.contains(&format!("offset {HEADER_LEN}")), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_non_final_segment_is_an_error() {
        let dir = tmpdir("nonfinal");
        let mut storage = LogStorage::open(LogStorageConfig {
            segment_bytes: 128, // tiny: force several segments
            fsync: false,
            dir: dir.clone(),
        })
        .unwrap();
        for i in 1..=20u64 {
            storage.append(&rec(i, i, i)).unwrap();
        }
        storage.flush().unwrap();
        let paths = storage.segment_paths();
        assert!(paths.len() > 2);
        drop(storage);
        // Chop the tail off the *first* segment.
        let data = fs::read(&paths[0]).unwrap();
        fs::write(&paths[0], &data[..data.len() - 3]).unwrap();
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        let err = iter
            .find(Result::is_err)
            .expect("must surface an error")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("non-final segment"), "{msg}");
        assert!(msg.contains("seg-0000000001"), "{msg}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_iter_yields_decodable_payloads() {
        let dir = tmpdir("frames");
        let mut storage = LogStorage::open(LogStorageConfig {
            segment_bytes: 256,
            fsync: false,
            dir: dir.clone(),
        })
        .unwrap();
        let records: Vec<_> = (1..=40u64).map(|i| rec(i, i, i)).collect();
        storage.append_batch(&records).unwrap();
        storage.flush().unwrap();
        drop(storage);
        let mut frames = LogStorage::scan_dir_frames(&dir).unwrap();
        let mut got = Vec::new();
        for payload in &mut frames {
            got.push(crate::codec::decode_record(payload.unwrap()).unwrap());
        }
        assert_eq!(got, records);
        assert!(!frames.torn_tail());
        assert!(frames.segments_scanned() > 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_dir_of_empty_dir() {
        let dir = tmpdir("empty");
        fs::create_dir_all(&dir).unwrap();
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        assert!(iter.next().is_none());
        assert!(!iter.torn_tail());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_drops_covered_segments() {
        let dir = tmpdir("truncate");
        let mut storage = LogStorage::open(LogStorageConfig {
            segment_bytes: 128,
            fsync: false,
            dir: dir.clone(),
        })
        .unwrap();
        for i in 1..=30u64 {
            storage.append(&commit(i, i, i)).unwrap();
        }
        storage.flush().unwrap();
        let segments_before = storage.segment_paths().len();
        assert!(segments_before > 2);
        let removed = storage.truncate_before(Csn(15)).unwrap();
        assert!(removed > 0);
        // Everything still readable and starting below or at csn 15.
        let got: Vec<_> = storage.iter().unwrap().map(|r| r.unwrap()).collect();
        assert!(!got.is_empty());
        let first_csn = got
            .iter()
            .find_map(|r| match r.kind {
                RecordKind::Commit { csn, .. } => Some(csn),
                _ => None,
            })
            .unwrap();
        assert!(first_csn <= Csn(15));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_keeps_segment_exactly_at_boundary() {
        // A segment whose max commit CSN equals `upto` is NOT fully below
        // the checkpoint boundary and must survive; one ending at upto-1
        // is covered and must go.
        let dir = tmpdir("boundary");
        let mut storage = LogStorage::open(LogStorageConfig {
            // Just above the segment header: rotate after every record, so
            // each closed segment holds exactly one commit.
            segment_bytes: HEADER_LEN + 1,
            fsync: false,
            dir: dir.clone(),
        })
        .unwrap();
        for i in 1..=5u64 {
            storage.append(&commit(i, i, i)).unwrap();
        }
        storage.flush().unwrap();
        // Closed segments hold csns 1..=4 (csn 5 is in the current one).
        let removed = storage.truncate_before(Csn(4)).unwrap();
        assert_eq!(removed, 3, "csns 1..=3 are < 4; csn 4 is at the boundary");
        let csns: Vec<u64> = storage
            .iter()
            .unwrap()
            .filter_map(|r| match r.unwrap().kind {
                RecordKind::Commit { csn, .. } => Some(csn.0),
                _ => None,
            })
            .collect();
        assert_eq!(csns, vec![4, 5]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_retaining_keeps_newest_eligible_segments() {
        let dir = tmpdir("retain");
        let mut storage = LogStorage::open(LogStorageConfig {
            segment_bytes: HEADER_LEN + 1, // one commit per closed segment
            fsync: false,
            dir: dir.clone(),
        })
        .unwrap();
        for i in 1..=6u64 {
            storage.append(&commit(i, i, i)).unwrap();
        }
        storage.flush().unwrap();
        // 5 closed segments (csns 1..=5), all below upto=10 → eligible.
        let removed = storage.truncate_before_retaining(Csn(10), 2).unwrap();
        assert_eq!(removed, 3, "retain=2 spares the two newest eligible");
        let first_csn = storage
            .iter()
            .unwrap()
            .find_map(|r| match r.unwrap().kind {
                RecordKind::Commit { csn, .. } => Some(csn.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_csn, 4);
        // Retain larger than the eligible count deletes nothing.
        assert_eq!(storage.truncate_before_retaining(Csn(10), 99).unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_never_splits_a_transaction() {
        // A transaction's writes must share a segment with their commit:
        // otherwise truncating the earlier segment (whose max commit CSN
        // is below the fence) would orphan a commit record the replay
        // then rejects as MissingWrites — or worse, silently lose a
        // post-boundary commit. Append several multi-write transactions
        // through a segment limit small enough that every record would
        // rotate under a per-record policy, then check each segment's
        // commits are self-contained.
        let dir = tmpdir("nosplit");
        let mut storage = LogStorage::open(LogStorageConfig {
            segment_bytes: HEADER_LEN + 1,
            fsync: false,
            dir: dir.clone(),
        })
        .unwrap();
        let mut lsn = 0u64;
        for t in 1..=8u64 {
            for w in 0..3u64 {
                lsn += 1;
                storage.append(&rec(lsn, t, t * 10 + w)).unwrap();
            }
            lsn += 1;
            storage
                .append(&LogRecord {
                    lsn: Lsn(lsn),
                    txn: TxnId(t),
                    kind: RecordKind::Commit {
                        csn: Csn(t),
                        ser_ts: Ts(t * 10),
                        n_writes: 3,
                    },
                })
                .unwrap();
        }
        storage.flush().unwrap();
        assert!(storage.segment_paths().len() >= 8, "rotation still happens");
        for path in storage.segment_paths() {
            let mut open: std::collections::HashSet<TxnId> = Default::default();
            for item in RecordIter::over(vec![path.clone()]) {
                let record = item.unwrap();
                match record.kind {
                    RecordKind::Write { .. } => {
                        open.insert(record.txn);
                    }
                    RecordKind::Commit { .. } | RecordKind::Abort => {
                        assert!(
                            open.remove(&record.txn),
                            "{}: commit for txn {:?} without its writes",
                            path.display(),
                            record.txn
                        );
                    }
                    RecordKind::Checkpoint { .. } => {}
                }
            }
            assert!(
                open.is_empty(),
                "{}: writes without their commit straddle into the next segment",
                path.display()
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn on_disk_bytes_tracks_appends_and_truncation() {
        let dir = tmpdir("diskbytes");
        let cfg = LogStorageConfig {
            segment_bytes: 128,
            fsync: false,
            dir: dir.clone(),
        };
        let mut storage = LogStorage::open(cfg.clone()).unwrap();
        for i in 1..=30u64 {
            storage.append(&commit(i, i, i)).unwrap();
        }
        storage.flush().unwrap();
        let on_disk: u64 = storage
            .segment_paths()
            .iter()
            .map(|p| fs::metadata(p).unwrap().len())
            .sum();
        assert_eq!(storage.stats().on_disk_bytes, on_disk);
        let before = storage.stats().on_disk_bytes;
        assert!(storage.truncate_before(Csn(20)).unwrap() > 0);
        let after = storage.stats().on_disk_bytes;
        assert!(after < before, "truncation must shrink on_disk_bytes");
        let on_disk_after: u64 = storage
            .segment_paths()
            .iter()
            .map(|p| fs::metadata(p).unwrap().len())
            .sum();
        assert_eq!(after, on_disk_after);
        drop(storage);
        // Reopen accounts for surviving history plus the fresh segment.
        let reopened = LogStorage::open(cfg).unwrap();
        assert_eq!(reopened.stats().on_disk_bytes, on_disk_after + HEADER_LEN);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let dir = tmpdir("badheader");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("seg-0000000001.rodainlog"),
            b"NOTMAGIC0000000000000",
        )
        .unwrap();
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        assert!(iter.next().unwrap().is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
