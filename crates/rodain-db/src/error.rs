//! Engine error types.

use std::fmt;

/// Opaque abort token surfaced inside a transaction closure.
///
/// Returned by [`crate::TxnCtx`] accessors when the transaction must stop
/// executing (doomed by a validating peer, evicted by the overload
/// manager, deadline expired, or aborted by the user). Closures propagate
/// it with `?`; the engine inspects its own state for the actual reason
/// and either restarts the transaction or reports a [`TxnError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnAbort {
    pub(crate) user_message: Option<String>,
}

impl TxnAbort {
    pub(crate) const SILENT: TxnAbort = TxnAbort { user_message: None };
}

impl fmt::Display for TxnAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.user_message {
            Some(m) => write!(f, "transaction aborted: {m}"),
            None => write!(f, "transaction must abort/restart"),
        }
    }
}

impl std::error::Error for TxnAbort {}

/// Terminal transaction failures reported to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The overload manager rejected the transaction at admission
    /// (active-transaction limit reached, arrival not urgent enough).
    AdmissionDenied,
    /// Admitted, then aborted in favour of a more urgent arrival.
    Evicted,
    /// The (firm) deadline expired before the transaction could commit.
    DeadlineExpired,
    /// A concurrency-control conflict aborted the transaction and no slack
    /// remained to restart it.
    ConflictAbort {
        /// Restarts attempted before giving up.
        restarts: u32,
    },
    /// The user closure requested an abort.
    UserAbort(String),
    /// The commit could not be made durable / acknowledged.
    Replication(String),
    /// The engine is shutting down.
    Shutdown,
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::AdmissionDenied => write!(f, "admission denied by overload manager"),
            TxnError::Evicted => write!(f, "evicted by a more urgent transaction"),
            TxnError::DeadlineExpired => write!(f, "deadline expired"),
            TxnError::ConflictAbort { restarts } => {
                write!(f, "aborted after {restarts} conflict restart(s)")
            }
            TxnError::UserAbort(m) => write!(f, "aborted by user: {m}"),
            TxnError::Replication(m) => write!(f, "replication failure: {m}"),
            TxnError::Shutdown => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for TxnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        assert!(TxnError::AdmissionDenied.to_string().contains("overload"));
        assert!(TxnError::ConflictAbort { restarts: 3 }
            .to_string()
            .contains('3'));
        assert!(TxnAbort::SILENT.to_string().contains("restart"));
        assert!(TxnAbort {
            user_message: Some("no funds".into())
        }
        .to_string()
        .contains("no funds"));
    }
}
