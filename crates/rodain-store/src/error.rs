//! Store error type.

use crate::types::ObjectId;
use std::fmt;

/// Errors surfaced by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The referenced object does not exist in the database.
    NoSuchObject(ObjectId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchObject(oid) => write!(f, "no such object: {oid:?}"),
        }
    }
}

impl std::error::Error for StoreError {}
