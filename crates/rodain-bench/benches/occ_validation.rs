//! Validation throughput of every concurrency-control protocol.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodain_occ::{make_controller, CcPriority, Protocol};
use rodain_store::{ObjectId, Store, Ts, TxnId, Value, Workspace};

fn bench_validation(c: &mut Criterion) {
    let store = Store::new();
    for i in 0..10_000u64 {
        store.load_initial(ObjectId(i), Value::Int(0));
    }
    let mut group = c.benchmark_group("occ-validate");
    for protocol in Protocol::ALL {
        group.bench_with_input(
            BenchmarkId::new("read4_write2", protocol.name()),
            &protocol,
            |b, &protocol| {
                let cc = make_controller(protocol);
                let mut txn = 0u64;
                b.iter(|| {
                    txn += 1;
                    let id = TxnId(txn);
                    cc.begin(id, CcPriority(txn));
                    let mut ws = Workspace::new(id);
                    for k in 0..4u64 {
                        let oid = ObjectId((txn * 13 + k * 997) % 10_000);
                        let observed = store.version(oid).map(|(w, _)| w).unwrap_or(Ts::ZERO);
                        cc.on_read(id, oid, observed);
                        ws.read(&store, oid);
                        if k < 2 {
                            cc.on_write(id, oid, &store);
                            ws.write(oid, Value::Int(txn as i64));
                        }
                    }
                    black_box(cc.validate(&ws, &store))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
