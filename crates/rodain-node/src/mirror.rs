//! The Mirror Node service.

use crate::detector::{DetectorVerdict, FailureDetector};
use crate::message::Message;
use rodain_log::{GroupCommitLog, PartitionedApplier, ReorderBuffer};
use rodain_net::{NetError, Transport};
use rodain_obs::{Gauge, Histogram, Recorder};
use rodain_occ::Csn;
use rodain_store::{Snapshot, Store};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Mirror service configuration.
#[derive(Clone, Debug)]
pub struct MirrorConfig {
    /// How long a receive may block before the loop services timers.
    pub poll_interval: Duration,
    /// Idle interval after which the mirror sends an explicit heartbeat.
    pub heartbeat_interval: Duration,
    /// Silence after which the primary is suspected.
    pub peer_timeout: Duration,
    /// Suspect rounds before the primary is declared dead.
    pub suspect_rounds: u32,
    /// When set, the state-transfer snapshot received at [`MirrorNode::join`]
    /// is persisted here as a checkpoint file. Without it, a *rejoining*
    /// mirror's disk log starts at the snapshot boundary and recovery from
    /// that disk alone would miss the pre-snapshot state; with it,
    /// [`crate::recover_with_checkpoint`] restores the full database from
    /// snapshot + log tail.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Partition workers for the takeover drain: committed transactions
    /// still queued in the reorder buffer when the primary dies are applied
    /// through a [`PartitionedApplier`] this wide before the node promotes.
    /// `1` applies inline (the pre-partitioned behaviour).
    pub takeover_workers: usize,
}

impl Default for MirrorConfig {
    fn default() -> Self {
        MirrorConfig {
            poll_interval: Duration::from_millis(5),
            heartbeat_interval: Duration::from_millis(50),
            peer_timeout: Duration::from_millis(200),
            suspect_rounds: 3,
            snapshot_dir: None,
            takeover_workers: crate::recovery::default_workers(),
        }
    }
}

/// Why the mirror loop ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MirrorExit {
    /// The primary is gone (link severed or watchdog timeout). The caller
    /// promotes this node: its store is current up to the last applied
    /// transaction, and the buffered logs have been flushed to disk.
    PrimaryFailed,
    /// Local shutdown was requested.
    ShutdownRequested,
}

/// Counters accumulated by the mirror loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MirrorReport {
    /// Log records ingested.
    pub records: u64,
    /// Ack frames sent — one per received frame that carried commit
    /// records, acknowledging the frame's highest CSN (ack coalescing).
    pub acks_sent: u64,
    /// Committed transactions applied to the database copy.
    pub txns_applied: u64,
    /// After-images installed.
    pub images_applied: u64,
    /// Heartbeats sent.
    pub heartbeats_sent: u64,
    /// Undecodable or unexpected messages ignored.
    pub ignored: u64,
    /// Uncommitted in-flight transactions discarded at exit.
    pub discarded_at_exit: u64,
}

/// The hot stand-by: maintains the database copy from the shipped log.
///
/// Life cycle: [`MirrorNode::join`] (announce, receive the state-transfer
/// snapshot) then [`MirrorNode::run`] (the receive → reorder → acknowledge →
/// apply → spool-to-disk loop). On primary failure `run` returns and the
/// embedding process promotes the node (see [`crate::RoleMachine`]).
pub struct MirrorNode {
    store: Arc<Store>,
    transport: Arc<dyn Transport>,
    disk: Option<GroupCommitLog>,
    config: MirrorConfig,
    reorder: ReorderBuffer,
    report: MirrorReport,
    shutdown: Arc<AtomicBool>,
    applied_csn: Arc<AtomicU64>,
    hb_seq: u64,
    obs: Option<MirrorObs>,
    /// When each commit was acknowledged, keyed by CSN — closed by the
    /// apply in [`MirrorNode::apply_ready`] (`mirror_apply_lag_ns`).
    /// Only populated when a recorder is attached.
    acked_at: HashMap<u64, Instant>,
}

/// Mirror-side metrics (see `METRICS.md`).
struct MirrorObs {
    /// Commit acknowledged → after-images applied to the copy.
    apply_lag: Histogram,
    /// Transactions buffered in the reorder buffer, not yet committed.
    reorder_pending: Gauge,
    /// Highest CSN applied to the database copy.
    applied_csn: Gauge,
    /// Promotion cost: drop-uncommitted + final disk flush at takeover.
    takeover_flush: Histogram,
    rec: Recorder,
}

impl MirrorNode {
    /// Create a mirror over `store` (usually empty; `join` fills it),
    /// talking to the primary through `transport`, spooling the reordered
    /// log to `disk` when given.
    #[must_use]
    pub fn new(
        store: Arc<Store>,
        transport: Arc<dyn Transport>,
        disk: Option<GroupCommitLog>,
        config: MirrorConfig,
    ) -> Self {
        MirrorNode {
            store,
            transport,
            disk,
            config,
            reorder: ReorderBuffer::new(),
            report: MirrorReport::default(),
            shutdown: Arc::new(AtomicBool::new(false)),
            applied_csn: Arc::new(AtomicU64::new(0)),
            hb_seq: 0,
            obs: None,
            acked_at: HashMap::new(),
        }
    }

    /// Publish `mirror_apply_lag_ns`, `mirror_reorder_pending`,
    /// `mirror_applied_csn` and `mirror_takeover_flush_ns` on `rec`
    /// (see `METRICS.md`).
    #[must_use]
    pub fn with_recorder(mut self, rec: &Recorder) -> Self {
        self.obs = Some(MirrorObs {
            apply_lag: rec.histogram("mirror_apply_lag_ns"),
            reorder_pending: rec.gauge("mirror_reorder_pending"),
            applied_csn: rec.gauge("mirror_applied_csn"),
            takeover_flush: rec.histogram("mirror_takeover_flush_ns"),
            rec: rec.clone(),
        });
        self
    }

    /// A flag that makes [`MirrorNode::run`] return at the next poll.
    #[must_use]
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Live view of the highest applied CSN (0 before any commit).
    #[must_use]
    pub fn applied_csn_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.applied_csn)
    }

    /// The database copy.
    #[must_use]
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Announce to the primary and receive the state-transfer snapshot.
    ///
    /// Returns the CSN at which the live log stream resumes. The paper's
    /// rejoin discipline: "The failed node will always become a Mirror Node
    /// when it recovers" — the local store content (possibly recovered from
    /// disk) is replaced wholesale by the primary's snapshot, which is
    /// always at least as new.
    pub fn join(&mut self) -> Result<Csn, NetError> {
        self.transport.send(Message::JoinRequest.encode())?;
        let mut chunks: Vec<Snapshot> = Vec::new();
        loop {
            let Some(frame) = self
                .transport
                .recv_timeout(self.config.peer_timeout * self.config.suspect_rounds)?
            else {
                return Err(NetError::Disconnected);
            };
            match Message::decode(frame) {
                Ok(Message::SnapshotChunk { objects, .. }) => {
                    chunks.push(Snapshot { objects });
                }
                Ok(Message::SnapshotDone { next_csn }) => {
                    let snapshot = Snapshot::from_chunks(chunks);
                    self.store.restore(&snapshot);
                    if let Some(dir) = &self.config.snapshot_dir {
                        // Make the join snapshot durable so this node's
                        // disk (snapshot + spooled log tail) always covers
                        // the full database.
                        let _ = rodain_log::write_snapshot_file(dir, &snapshot, next_csn);
                    }
                    self.reorder = ReorderBuffer::starting_at(next_csn);
                    self.applied_csn
                        .store(next_csn.0.saturating_sub(1), Ordering::Release);
                    return Ok(next_csn);
                }
                Ok(Message::Heartbeat { .. }) => {}
                Ok(_) | Err(_) => {
                    self.report.ignored += 1;
                }
            }
        }
    }

    /// The mirror main loop. Returns when the primary fails or shutdown is
    /// requested; either way the spooled log has been flushed to disk.
    pub fn run(&mut self) -> (MirrorExit, MirrorReport) {
        let start = Instant::now();
        let now_ns = |start: Instant| start.elapsed().as_nanos() as u64;
        let mut detector = FailureDetector::new(
            0,
            self.config.peer_timeout.as_nanos() as u64,
            self.config.suspect_rounds,
        );
        let mut last_hb = Instant::now();

        let exit = loop {
            if self.shutdown.load(Ordering::Acquire) {
                break MirrorExit::ShutdownRequested;
            }
            match self.transport.recv_timeout(self.config.poll_interval) {
                Ok(Some(frame)) => {
                    detector.heard(now_ns(start));
                    if let Err(exit) = self.handle_frame(frame) {
                        break exit;
                    }
                }
                Ok(None) => {
                    if detector.check(now_ns(start)) == DetectorVerdict::Dead {
                        break MirrorExit::PrimaryFailed;
                    }
                }
                Err(_) => break MirrorExit::PrimaryFailed,
            }
            if last_hb.elapsed() >= self.config.heartbeat_interval {
                last_hb = Instant::now();
                self.hb_seq += 1;
                if self
                    .transport
                    .send(Message::Heartbeat { seq: self.hb_seq }.encode())
                    .is_err()
                {
                    break MirrorExit::PrimaryFailed;
                }
                self.report.heartbeats_sent += 1;
            }
        };

        // Close the loss window: make everything buffered durable before
        // taking over ("As soon as the remaining node has had enough time to
        // store the remaining logs to the disk, no data will be lost").
        let takeover_started = Instant::now();
        self.drain_remaining();
        self.report.discarded_at_exit = self.reorder.drop_uncommitted() as u64;
        if let Some(disk) = &self.disk {
            let _ = disk.flush_sync();
        }
        if let Some(obs) = &self.obs {
            if exit == MirrorExit::PrimaryFailed {
                obs.takeover_flush.record_elapsed(takeover_started);
                obs.rec.emit(
                    "takeover",
                    format!(
                        "primary failed; {} uncommitted txn(s) discarded, logs flushed",
                        self.report.discarded_at_exit
                    ),
                );
            }
        }
        (exit, self.report)
    }

    fn handle_frame(&mut self, frame: bytes::Bytes) -> Result<(), MirrorExit> {
        match Message::decode(frame) {
            Ok(Message::Records(records)) => {
                // Ack coalescing: the shipper sends frames whose commit
                // CSNs form a contiguous ascending run, so acknowledging
                // only the highest commit in the frame covers every
                // earlier one — one ack resolves the whole batch of
                // commit tickets on the primary.
                let mut highest: Option<Csn> = None;
                for record in records {
                    self.report.records += 1;
                    match self.reorder.ingest(record) {
                        Ok(rodain_log::IngestOutcome::Committed(csn)) => {
                            if highest.map_or(true, |h| csn.0 > h.0) {
                                highest = Some(csn);
                            }
                            if self.obs.is_some() {
                                self.acked_at.insert(csn.0, Instant::now());
                            }
                        }
                        Ok(_) => {}
                        Err(_) => {
                            // Gap in a transaction's record group: the
                            // transport contract makes this unreachable in
                            // production; count and continue.
                            self.report.ignored += 1;
                        }
                    }
                }
                if let Some(csn) = highest {
                    // Acknowledge immediately: this is the commit gate on
                    // the primary.
                    let ack = Message::CommitAck {
                        txn: self.last_committed_txn(csn),
                        csn,
                    };
                    if self.transport.send(ack.encode()).is_err() {
                        return Err(MirrorExit::PrimaryFailed);
                    }
                    self.report.acks_sent += 1;
                }
                if let Some(obs) = &self.obs {
                    obs.reorder_pending.set(self.reorder.pending_txns() as i64);
                }
                self.apply_ready();
                Ok(())
            }
            Ok(Message::Heartbeat { .. }) => Ok(()),
            Ok(_) | Err(_) => {
                self.report.ignored += 1;
                Ok(())
            }
        }
    }

    fn last_committed_txn(&self, csn: Csn) -> rodain_store::TxnId {
        // The ReorderBuffer indexed the commit by CSN; recover its TxnId
        // for the ack (None only for replayed duplicates).
        self.reorder
            .committed_txn(csn)
            .unwrap_or(rodain_store::TxnId(0))
    }

    /// Apply every committed transaction still queued in the reorder
    /// buffer, hash-partitioned across `takeover_workers` install streams.
    /// This is the recovery-critical half of takeover: the promoted store
    /// must reflect each *acknowledged* commit before serving reads, and
    /// the backlog (anything received but not yet applied when the primary
    /// died) is drained fastest in parallel.
    fn drain_remaining(&mut self) {
        let ready = self.reorder.drain_ready();
        if ready.is_empty() {
            return;
        }
        let mut applier = PartitionedApplier::new(&self.store, self.config.takeover_workers);
        for committed in &ready {
            applier.apply(committed);
            if let Some(disk) = &self.disk {
                let _ = disk.append_async(committed.to_records());
            }
        }
        match applier.finish() {
            Ok(stats) => {
                self.report.txns_applied += stats.txns;
                self.report.images_applied += stats.images;
                self.applied_csn.store(stats.max_csn.0, Ordering::Release);
                if let Some(obs) = &self.obs {
                    obs.applied_csn.set(stats.max_csn.0 as i64);
                }
            }
            Err(_) => {
                // Install streams cannot fail on pre-decoded images; keep
                // the inline-applied count honest if they somehow did.
                self.report.ignored += 1;
            }
        }
    }

    fn apply_ready(&mut self) {
        for committed in self.reorder.drain_ready() {
            for (oid, image) in &committed.writes {
                self.store.install(*oid, image.clone(), committed.ser_ts);
                self.report.images_applied += 1;
            }
            self.report.txns_applied += 1;
            self.applied_csn.store(committed.csn.0, Ordering::Release);
            if let Some(obs) = &self.obs {
                if let Some(acked) = self.acked_at.remove(&committed.csn.0) {
                    obs.apply_lag.record_elapsed(acked);
                }
                obs.applied_csn.set(committed.csn.0 as i64);
            }
            if let Some(disk) = &self.disk {
                let _ = disk.append_async(committed.to_records());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_log::{LogRecord, Lsn, RecordKind};
    use rodain_net::InProcTransport;
    use rodain_store::{ObjectId, Ts, TxnId, Value};

    fn write_rec(lsn: u64, txn: u64, oid: u64, v: i64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Write {
                oid: ObjectId(oid),
                image: Value::Int(v),
            },
        }
    }

    fn commit_rec(lsn: u64, txn: u64, csn: u64, n: u32) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn * 1000),
                n_writes: n,
            },
        }
    }

    fn fast_config() -> MirrorConfig {
        MirrorConfig {
            poll_interval: Duration::from_millis(1),
            heartbeat_interval: Duration::from_millis(10),
            peer_timeout: Duration::from_millis(50),
            suspect_rounds: 2,
            snapshot_dir: None,
            takeover_workers: 2,
        }
    }

    #[test]
    fn join_receives_snapshot_then_applies_stream() {
        let (primary_side, mirror_side) = InProcTransport::pair();
        let store = Arc::new(Store::new());
        let rec = Recorder::new();
        let mut mirror = MirrorNode::new(store.clone(), Arc::new(mirror_side), None, fast_config())
            .with_recorder(&rec);
        let applied = mirror.applied_csn_handle();
        let shutdown = mirror.shutdown_handle();

        let primary = std::thread::spawn(move || {
            // Expect the join request.
            let frame = primary_side
                .recv_timeout(Duration::from_secs(1))
                .unwrap()
                .unwrap();
            assert_eq!(Message::decode(frame).unwrap(), Message::JoinRequest);
            // Send a 3-object snapshot in 2 chunks.
            let snap_store = Store::new();
            for i in 0..3u64 {
                snap_store.load_initial(ObjectId(i), Value::Int(100 + i as i64));
            }
            for msg in Message::snapshot_chunks(&snap_store.snapshot(), 2) {
                primary_side.send(msg.encode()).unwrap();
            }
            primary_side
                .send(Message::SnapshotDone { next_csn: Csn(1) }.encode())
                .unwrap();
            // Stream one committed transaction.
            primary_side
                .send(
                    Message::Records(vec![write_rec(1, 7, 0, -1), commit_rec(2, 7, 1, 1)]).encode(),
                )
                .unwrap();
            // Await the ack.
            loop {
                let frame = primary_side
                    .recv_timeout(Duration::from_secs(1))
                    .unwrap()
                    .unwrap();
                if let Message::CommitAck { txn, csn } = Message::decode(frame).unwrap() {
                    assert_eq!(txn, TxnId(7));
                    assert_eq!(csn, Csn(1));
                    break;
                }
            }
            primary_side
        });

        let next = mirror.join().unwrap();
        assert_eq!(next, Csn(1));
        assert_eq!(store.len(), 3);

        let runner = std::thread::spawn(move || mirror.run());
        let primary_side = primary.join().unwrap();
        // Wait until the mirror applied csn 1.
        let deadline = Instant::now() + Duration::from_secs(2);
        while applied.load(Ordering::Acquire) < 1 {
            assert!(Instant::now() < deadline, "mirror never applied");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(store.read(ObjectId(0)).unwrap().0, Value::Int(-1));
        shutdown.store(true, Ordering::Release);
        let (exit, report) = runner.join().unwrap();
        assert_eq!(exit, MirrorExit::ShutdownRequested);
        assert_eq!(report.txns_applied, 1);
        assert_eq!(report.acks_sent, 1);
        let snap = rec.snapshot();
        assert_eq!(snap.histogram("mirror_apply_lag_ns").unwrap().count, 1);
        assert_eq!(snap.gauge("mirror_applied_csn"), Some(1));
        drop(primary_side);
    }

    #[test]
    fn batched_frame_gets_one_ack_for_its_highest_csn() {
        let (primary_side, mirror_side) = InProcTransport::pair();
        let store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(store.clone(), Arc::new(mirror_side), None, fast_config());
        let shutdown = mirror.shutdown_handle();
        let applied = mirror.applied_csn_handle();
        let runner = std::thread::spawn(move || mirror.run());

        // One coalesced frame carrying three committed transactions.
        primary_side
            .send(
                Message::Records(vec![
                    write_rec(1, 7, 0, 10),
                    commit_rec(2, 7, 1, 1),
                    write_rec(3, 8, 1, 20),
                    commit_rec(4, 8, 2, 1),
                    commit_rec(5, 9, 3, 0),
                ])
                .encode(),
            )
            .unwrap();

        // Exactly one ack comes back, for the frame's highest CSN.
        let deadline = Instant::now() + Duration::from_secs(2);
        let (txn, csn) = loop {
            assert!(Instant::now() < deadline, "no ack arrived");
            if let Ok(Some(frame)) = primary_side.recv_timeout(Duration::from_millis(20)) {
                if let Ok(Message::CommitAck { txn, csn }) = Message::decode(frame) {
                    break (txn, csn);
                }
            }
        };
        assert_eq!(csn, Csn(3), "ack must cover the whole batch");
        assert_eq!(txn, TxnId(9));

        let deadline = Instant::now() + Duration::from_secs(2);
        while applied.load(Ordering::Acquire) < 3 {
            assert!(Instant::now() < deadline, "mirror never applied the batch");
            std::thread::sleep(Duration::from_millis(1));
        }
        shutdown.store(true, Ordering::Release);
        let (exit, report) = runner.join().unwrap();
        assert_eq!(exit, MirrorExit::ShutdownRequested);
        assert_eq!(report.acks_sent, 1, "one ack per frame, not per commit");
        assert_eq!(report.txns_applied, 3);
        assert_eq!(store.read(ObjectId(0)).unwrap().0, Value::Int(10));
        assert_eq!(store.read(ObjectId(1)).unwrap().0, Value::Int(20));
    }

    #[test]
    fn primary_death_ends_the_loop() {
        let (primary_side, mirror_side) = InProcTransport::pair();
        let store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(store, Arc::new(mirror_side), None, fast_config());
        let runner = std::thread::spawn(move || mirror.run());
        std::thread::sleep(Duration::from_millis(5));
        primary_side.close();
        let (exit, _) = runner.join().unwrap();
        assert_eq!(exit, MirrorExit::PrimaryFailed);
    }

    #[test]
    fn watchdog_timeout_without_close_also_promotes() {
        // The primary process hangs (no traffic, link not closed): the
        // watchdog must still declare it dead.
        let (_primary_side, mirror_side) = InProcTransport::pair();
        let store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(store, Arc::new(mirror_side), None, fast_config());
        let started = Instant::now();
        let (exit, _) = mirror.run();
        assert_eq!(exit, MirrorExit::PrimaryFailed);
        // ~2 × 50 ms of silence.
        assert!(started.elapsed() >= Duration::from_millis(90));
    }

    #[test]
    fn uncommitted_tail_is_discarded_on_exit() {
        let (primary_side, mirror_side) = InProcTransport::pair();
        let store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(store.clone(), Arc::new(mirror_side), None, fast_config());
        primary_side
            .send(Message::Records(vec![write_rec(1, 9, 5, 5)]).encode())
            .unwrap();
        primary_side.close();
        let (exit, report) = mirror.run();
        assert_eq!(exit, MirrorExit::PrimaryFailed);
        assert_eq!(report.discarded_at_exit, 1);
        assert_eq!(store.read(ObjectId(5)), None, "no dirty apply");
    }
}
