//! Scheduler substrate microbenchmarks: EDF queue and admission.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rodain_sched::{
    ActiveSet, OverloadConfig, OverloadManager, ReadyQueue, ReservationConfig, TaskMeta,
};
use rodain_store::TxnId;

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.throughput(Throughput::Elements(1));

    group.bench_function("edf_push_pop", |b| {
        let mut queue = ReadyQueue::new(ReservationConfig::default());
        let mut i = 0u64;
        let mut expired = Vec::new();
        // Keep ~64 tasks resident.
        for k in 0..64u64 {
            queue.push(TaskMeta::firm(TxnId(k), k, 50_000_000, 1_000));
        }
        b.iter(|| {
            i += 1;
            queue.push(TaskMeta::firm(
                TxnId(i + 64),
                i,
                (i * 7919) % 100_000_000,
                1_000,
            ));
            black_box(queue.pop(i, &mut expired));
            expired.clear();
        })
    });

    group.bench_function("admission_decision", |b| {
        let mut manager = OverloadManager::new(OverloadConfig::default());
        let mut active = ActiveSet::new();
        for k in 0..50u64 {
            active.insert(TaskMeta::firm(TxnId(k), 0, 50_000_000 + k, 1_000));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let arriving = TaskMeta::firm(TxnId(1_000 + i), i, (i * 31) % 80_000_000, 1_000);
            black_box(manager.admit(i, &arriving, &active))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
