//! Receipts and engine statistics.

use rodain_occ::{CcStats, Csn};
use rodain_store::{Ts, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What a committed transaction returns to the client.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnReceipt {
    /// The closure's result value.
    pub result: Option<Value>,
    /// Commit sequence number (true validation order).
    pub csn: Csn,
    /// Serialization timestamp.
    pub ser_ts: Ts,
    /// Concurrency-control restarts endured before committing.
    pub restarts: u32,
    /// End-to-end response time (submission → reply).
    pub response: Duration,
    /// Commit-gate wait (validation accept → durable/acknowledged).
    pub commit_wait: Duration,
}

#[derive(Default)]
pub(crate) struct Counters {
    pub committed: AtomicU64,
    pub aborted_admission: AtomicU64,
    pub aborted_evicted: AtomicU64,
    pub aborted_deadline: AtomicU64,
    pub aborted_conflict: AtomicU64,
    pub aborted_user: AtomicU64,
    pub aborted_replication: AtomicU64,
    pub restarts: AtomicU64,
    pub lock_waits: AtomicU64,
}

impl Counters {
    pub fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time snapshot of engine health.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Committed transactions.
    pub committed: u64,
    /// Admission rejections.
    pub aborted_admission: u64,
    /// Evictions by more urgent arrivals.
    pub aborted_evicted: u64,
    /// Deadline expiries.
    pub aborted_deadline: u64,
    /// Conflict aborts (restarts exhausted the slack).
    pub aborted_conflict: u64,
    /// User-requested aborts.
    pub aborted_user: u64,
    /// Replication/durability failures.
    pub aborted_replication: u64,
    /// Concurrency-control restarts retried.
    pub restarts: u64,
    /// 2PL lock waits observed.
    pub lock_waits: u64,
    /// Controller counters.
    pub cc: CcStats,
    /// Transactions currently admitted.
    pub active: usize,
}

impl EngineStats {
    pub(crate) fn from_counters(counters: &Counters, cc: CcStats, active: usize) -> EngineStats {
        EngineStats {
            committed: counters.committed.load(Ordering::Relaxed),
            aborted_admission: counters.aborted_admission.load(Ordering::Relaxed),
            aborted_evicted: counters.aborted_evicted.load(Ordering::Relaxed),
            aborted_deadline: counters.aborted_deadline.load(Ordering::Relaxed),
            aborted_conflict: counters.aborted_conflict.load(Ordering::Relaxed),
            aborted_user: counters.aborted_user.load(Ordering::Relaxed),
            aborted_replication: counters.aborted_replication.load(Ordering::Relaxed),
            restarts: counters.restarts.load(Ordering::Relaxed),
            lock_waits: counters.lock_waits.load(Ordering::Relaxed),
            cc,
            active,
        }
    }

    /// All aborts combined.
    #[must_use]
    pub fn aborted(&self) -> u64 {
        self.aborted_admission
            + self.aborted_evicted
            + self.aborted_deadline
            + self.aborted_conflict
            + self.aborted_user
            + self.aborted_replication
    }

    /// The paper's miss ratio over the engine lifetime.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        let offered = self.committed + self.aborted();
        if offered == 0 {
            return 0.0;
        }
        self.aborted() as f64 / offered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_ratios() {
        let counters = Counters::default();
        Counters::bump(&counters.committed);
        Counters::bump(&counters.committed);
        Counters::bump(&counters.aborted_deadline);
        Counters::add(&counters.restarts, 5);
        let stats = EngineStats::from_counters(&counters, CcStats::default(), 3);
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.aborted(), 1);
        assert_eq!(stats.restarts, 5);
        assert_eq!(stats.active, 3);
        assert!((stats.miss_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(EngineStats::default().miss_ratio(), 0.0);
    }
}
