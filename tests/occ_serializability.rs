//! Property-based serializability checking for the whole protocol family.
//!
//! For arbitrary transaction mixes and arbitrary interleavings, every
//! controller must produce a committed history that is **view-equivalent to
//! the serial execution in serialization-timestamp order**:
//!
//! 1. every committed read observed exactly the version the serial order
//!    dictates (the version written by the latest committed writer with a
//!    smaller serialization timestamp);
//! 2. the final database state equals a serial replay of the committed
//!    transactions in timestamp order.
//!
//! Aborted/restarted transactions must leave no trace (deferred write).

use proptest::prelude::*;
use rodain::occ::{
    make_controller, AccessDecision, CcPriority, ConcurrencyController, Protocol, ValidationOutcome,
};
use rodain::store::{ObjectId, ReadObservation, Store, Ts, TxnId, Value, Workspace};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Read(u64),
    Write(u64),
}

#[derive(Clone, Debug)]
struct TxnScript {
    ops: Vec<Op>,
}

fn txn_script(n_objects: u64) -> impl Strategy<Value = TxnScript> {
    prop::collection::vec(
        (0..n_objects, prop::bool::ANY).prop_map(|(oid, is_write)| {
            if is_write {
                Op::Write(oid)
            } else {
                Op::Read(oid)
            }
        }),
        1..6,
    )
    .prop_map(|ops| TxnScript { ops })
}

#[derive(Debug)]
struct Committed {
    ser_ts: Ts,
    reads: Vec<(ObjectId, ReadObservation)>,
    writes: Vec<(ObjectId, Value)>,
}

struct Runner {
    store: Store,
    cc: Arc<dyn ConcurrencyController>,
    states: Vec<TxnState>,
}

struct TxnState {
    id: TxnId,
    script: TxnScript,
    pos: usize,
    ws: Workspace,
    finished: bool,
    committed: Option<Committed>,
}

enum StepResult {
    Progress,
    Blocked,
    Finished,
}

impl Runner {
    fn new(protocol: Protocol, n_objects: u64, scripts: &[TxnScript]) -> Runner {
        let store = Store::new();
        for oid in 0..n_objects {
            store.load_initial(ObjectId(oid), Value::Int(oid as i64));
        }
        let cc = make_controller(protocol);
        let states = scripts
            .iter()
            .enumerate()
            .map(|(i, script)| {
                let id = TxnId(i as u64 + 1);
                cc.begin(id, CcPriority(i as u64 + 1));
                TxnState {
                    id,
                    script: script.clone(),
                    pos: 0,
                    ws: Workspace::new(id),
                    finished: false,
                    committed: None,
                }
            })
            .collect();
        Runner { store, cc, states }
    }

    /// Advance transaction `i` by one operation (or validate it).
    fn step(&mut self, i: usize) -> StepResult {
        if self.states[i].finished {
            return StepResult::Finished;
        }
        let id = self.states[i].id;
        if self.cc.doomed(id).is_some() {
            // No retry in this harness: a doomed transaction just aborts.
            self.cc.remove(id);
            self.states[i].finished = true;
            return StepResult::Finished;
        }
        let pos = self.states[i].pos;
        if pos >= self.states[i].script.ops.len() {
            // Validation.
            let outcome = self.cc.validate(&self.states[i].ws, &self.store);
            let state = &mut self.states[i];
            state.finished = true;
            if let ValidationOutcome::Commit { ser_ts, .. } = outcome {
                state.committed = Some(Committed {
                    ser_ts,
                    reads: state.ws.reads().collect(),
                    writes: state.ws.writes().to_vec(),
                });
            }
            return StepResult::Finished;
        }
        let op = self.states[i].script.ops[pos].clone();
        match op {
            Op::Read(oid) => {
                let oid = ObjectId(oid);
                if self.states[i].ws.has_written(oid) {
                    // Read-your-writes: no controller hook.
                    self.states[i].pos += 1;
                    return StepResult::Progress;
                }
                let committed = self.store.read(oid);
                let observed = committed.as_ref().map(|(_, w)| *w).unwrap_or(Ts::ZERO);
                match self.cc.on_read(id, oid, observed) {
                    AccessDecision::Proceed => {
                        let state = &mut self.states[i];
                        state.ws.note_read(oid, observed, committed.is_some());
                        state.pos += 1;
                        StepResult::Progress
                    }
                    AccessDecision::Restart(_) => {
                        self.cc.remove(id);
                        self.states[i].finished = true;
                        StepResult::Finished
                    }
                    AccessDecision::Block { .. } => StepResult::Blocked,
                }
            }
            Op::Write(oid) => {
                let oid = ObjectId(oid);
                match self.cc.on_write(id, oid, &self.store) {
                    AccessDecision::Proceed => {
                        let state = &mut self.states[i];
                        // Unique value per (txn, op) to detect mix-ups.
                        let value = Value::Int((state.id.0 * 1_000 + pos as u64) as i64);
                        state.ws.write(oid, value);
                        state.pos += 1;
                        StepResult::Progress
                    }
                    AccessDecision::Restart(_) => {
                        self.cc.remove(id);
                        self.states[i].finished = true;
                        StepResult::Finished
                    }
                    AccessDecision::Block { .. } => StepResult::Blocked,
                }
            }
        }
    }

    fn drain(&mut self) {
        // Finish every remaining transaction; if a full pass over the
        // blocked set makes no progress, abort the first blocked one
        // (breaks 2PL waits the single-threaded harness cannot serve).
        loop {
            let mut progressed = false;
            let mut all_done = true;
            let mut first_blocked = None;
            for i in 0..self.states.len() {
                match self.step(i) {
                    StepResult::Progress | StepResult::Finished => {
                        if !self.states[i].finished {
                            all_done = false;
                            progressed = true;
                        }
                    }
                    StepResult::Blocked => {
                        all_done = false;
                        if first_blocked.is_none() {
                            first_blocked = Some(i);
                        }
                    }
                }
            }
            if all_done {
                return;
            }
            if !progressed {
                let i = first_blocked.expect("no progress implies a blocked txn");
                self.cc.remove(self.states[i].id);
                self.states[i].finished = true;
            }
        }
    }

    fn check_view_serializable(&self, n_objects: u64) -> Result<(), String> {
        let mut committed: Vec<&Committed> = self
            .states
            .iter()
            .filter_map(|s| s.committed.as_ref())
            .collect();
        committed.sort_by_key(|c| c.ser_ts);
        // Serialization timestamps must be unique.
        for pair in committed.windows(2) {
            if pair[0].ser_ts == pair[1].ser_ts {
                return Err(format!("duplicate ser_ts {:?}", pair[0].ser_ts));
            }
        }
        // Serial replay.
        let mut shadow: HashMap<ObjectId, (Value, Ts)> = (0..n_objects)
            .map(|oid| (ObjectId(oid), (Value::Int(oid as i64), Ts::ZERO)))
            .collect();
        for c in &committed {
            for (oid, obs) in &c.reads {
                let (_, shadow_wts) = shadow.get(oid).cloned().unwrap_or((Value::Null, Ts::ZERO));
                if obs.wts != shadow_wts {
                    return Err(format!(
                        "txn at {:?} read {:?}@{:?} but serial order dictates version {:?}",
                        c.ser_ts, oid, obs.wts, shadow_wts
                    ));
                }
            }
            for (oid, value) in &c.writes {
                shadow.insert(*oid, (value.clone(), c.ser_ts));
            }
        }
        // Final states agree.
        for oid in 0..n_objects {
            let oid = ObjectId(oid);
            let actual = self.store.read(oid).map(|(v, _)| v);
            let expected = shadow.get(&oid).map(|(v, _)| v.clone());
            if actual != expected {
                return Err(format!(
                    "final state of {oid:?}: store {actual:?} vs serial {expected:?}"
                ));
            }
        }
        Ok(())
    }
}

fn run_case(
    protocol: Protocol,
    n_objects: u64,
    scripts: &[TxnScript],
    schedule: &[usize],
) -> Result<usize, String> {
    let mut runner = Runner::new(protocol, n_objects, scripts);
    for idx in schedule {
        let i = idx % scripts.len();
        let _ = runner.step(i);
    }
    runner.drain();
    runner.check_view_serializable(n_objects)?;
    Ok(runner
        .states
        .iter()
        .filter(|s| s.committed.is_some())
        .count())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_protocol_is_view_serializable(
        n_objects in 2u64..6,
        scripts in prop::collection::vec(txn_script(5), 2..10),
        schedule in prop::collection::vec(prop::sample::Index::arbitrary(), 0..80),
    ) {
        // Clamp scripts' object ids into range.
        let scripts: Vec<TxnScript> = scripts
            .into_iter()
            .map(|s| TxnScript {
                ops: s.ops.into_iter().map(|op| match op {
                    Op::Read(o) => Op::Read(o % n_objects),
                    Op::Write(o) => Op::Write(o % n_objects),
                }).collect(),
            })
            .collect();
        let schedule: Vec<usize> = schedule.iter().map(|i| i.index(usize::MAX / 2)).collect();
        for protocol in Protocol::ALL {
            if let Err(e) = run_case(protocol, n_objects, &scripts, &schedule) {
                prop_assert!(false, "{protocol}: {e}");
            }
        }
    }
}

/// OCC-DATI "reduces the number of unnecessary restarts" — a *statistical*
/// claim (specific adversarial interleavings exist where a backward-placed
/// commit squeezes a third transaction's interval and DATI loses one commit
/// that broadcast's early restart would have freed up). Aggregate over many
/// deterministic random histories, DATI must commit strictly more than
/// broadcast commit.
#[test]
fn dati_commits_more_than_broadcast_in_aggregate() {
    let mut rng_state = 0x0DA1_2000u64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    let mut total_bc = 0usize;
    let mut total_dati = 0usize;
    for _case in 0..400 {
        let n_objects = 2 + next() % 4;
        let n_txns = 2 + (next() % 7) as usize;
        let scripts: Vec<TxnScript> = (0..n_txns)
            .map(|_| {
                let n_ops = 1 + (next() % 5) as usize;
                TxnScript {
                    ops: (0..n_ops)
                        .map(|_| {
                            let oid = next() % n_objects;
                            if next() % 2 == 0 {
                                Op::Write(oid)
                            } else {
                                Op::Read(oid)
                            }
                        })
                        .collect(),
                }
            })
            .collect();
        let schedule: Vec<usize> = (0..(next() % 60) as usize)
            .map(|_| next() as usize)
            .collect();
        total_bc += run_case(Protocol::OccBc, n_objects, &scripts, &schedule).unwrap();
        total_dati += run_case(Protocol::OccDati, n_objects, &scripts, &schedule).unwrap();
    }
    assert!(
        total_dati > total_bc,
        "aggregate commits: DATI {total_dati} vs broadcast {total_bc}"
    );
}

#[test]
fn backward_commit_scenario_exercised() {
    // A deterministic instance of the scenario DATI saves and BC kills:
    // T1 reads x; T2 overwrites x and commits; T1 then writes y.
    let scripts = vec![
        TxnScript {
            ops: vec![Op::Read(0), Op::Write(1)],
        },
        TxnScript {
            ops: vec![Op::Write(0)],
        },
    ];
    // Schedule: T1 reads x, then T2 runs to completion, then T1 finishes.
    let mut runner_dati = Runner::new(Protocol::OccDati, 2, &scripts);
    assert!(matches!(runner_dati.step(0), StepResult::Progress)); // T1 reads x
    assert!(matches!(runner_dati.step(1), StepResult::Progress)); // T2 writes x
    assert!(matches!(runner_dati.step(1), StepResult::Finished)); // T2 commits
    runner_dati.drain();
    runner_dati.check_view_serializable(2).unwrap();
    let dati_commits = runner_dati
        .states
        .iter()
        .filter(|s| s.committed.is_some())
        .count();
    assert_eq!(dati_commits, 2, "DATI commits both via backward placement");

    let mut runner_bc = Runner::new(Protocol::OccBc, 2, &scripts);
    let _ = runner_bc.step(0);
    let _ = runner_bc.step(1);
    let _ = runner_bc.step(1);
    runner_bc.drain();
    runner_bc.check_view_serializable(2).unwrap();
    let bc_commits = runner_bc
        .states
        .iter()
        .filter(|s| s.committed.is_some())
        .count();
    assert_eq!(bc_commits, 1, "broadcast commit kills the stale reader");
}
