//! CLUSTERSCALE: SHARDSCALE across processes — one shard per
//! `cluster_node` process over loopback TCP, traffic through the
//! map-aware cluster client.
//!
//! Writes `BENCH_CLUSTERSCALE.json` into the output directory and exits
//! non-zero when multi-node placement regresses: 4 nodes must clear 2×
//! the committed throughput of 1 node over real sockets.
//!
//! Needs the `cluster_node` binary: either a sibling in the same target
//! directory or named by `RODAIN_CLUSTER_NODE_BIN`. Skips (exit 0) when
//! absent, matching the cluster test suites.
//!
//! `cargo run -p rodain-bench --release --bin cluster_scale [-- --quick]`

use rodain_bench::cluster::cluster_scale;
use rodain_bench::experiments::SweepOptions;
use rodain_bench::report::out_dir;

fn main() {
    let opts = SweepOptions::from_args();
    let Some(report) = cluster_scale(opts.count) else {
        eprintln!("cluster_node binary not found; skipping CLUSTERSCALE");
        return;
    };
    report.table().print();

    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");
    let path = dir.join("BENCH_CLUSTERSCALE.json");
    std::fs::write(&path, report.to_json()).expect("write BENCH_CLUSTERSCALE.json");
    println!("json: {path:?}");

    let speedup = report.speedup_at(4);
    println!("speedup at 4 nodes: {speedup:.2}x");
    if speedup < 2.0 {
        eprintln!("CLUSTERSCALE regression: need speedup >= 2.0 at 4 nodes (got {speedup:.2})");
        std::process::exit(1);
    }
}
