//! The paper's motivating workload: an intelligent-network **number
//! translation service** (e.g. toll-free 0800 numbers) backed by a
//! real-time main-memory database.
//!
//! Run with: `cargo run --release --example number_translation`
//!
//! A 30 000-object translation database serves a mix of read-only service
//! provision transactions (translate a number, firm 50 ms deadline) and
//! update service provision transactions (re-point a number, firm 150 ms
//! deadline), driven by a deterministic Poisson trace — the paper's
//! "off-line generated test file".

use rodain::db::{Rodain, TxnError, TxnOptions};
use rodain::workload::{NumberTranslationDb, TraceGenerator, TxnKind, WorkloadSpec};
use rodain::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let spec = WorkloadSpec {
        count: 5_000,
        arrival_rate_tps: 2_000.0, // a modern laptop is no Pentium Pro
        write_fraction: 0.2,
        ..WorkloadSpec::default()
    };
    let schema = NumberTranslationDb::new(spec.db_objects);
    let trace = TraceGenerator::new(spec.clone()).generate();
    println!(
        "trace: {} transactions, {:.1} % updates, {:.1} s of offered load",
        trace.len(),
        trace.update_fraction() * 100.0,
        trace.duration_ns() as f64 / 1e9
    );

    let db = Arc::new(Rodain::builder().workers(8).build().unwrap());
    print!("populating {} translation records… ", spec.db_objects);
    for n in 0..spec.db_objects {
        db.load_initial(schema.object_id(n), schema.initial_record(n));
    }
    println!("done");

    // Replay the trace with real arrival pacing.
    let started = Instant::now();
    let mut outcomes: Vec<_> = Vec::with_capacity(trace.len());
    for request in &trace.requests {
        let target = Duration::from_nanos(request.arrival_ns);
        if let Some(sleep) = target.checked_sub(started.elapsed()) {
            std::thread::sleep(sleep);
        }
        let objects: Vec<u64> = request.objects.clone();
        let seq = request.seq;
        let opts = match request.kind {
            TxnKind::Update => TxnOptions::firm_ms(150),
            _ => TxnOptions::firm_ms(50),
        };
        let is_update = request.is_update();
        outcomes.push(db.submit(opts, move |ctx| {
            let mut last = None;
            for &n in &objects {
                let oid = schema.object_id(n);
                let record = ctx.read(oid)?.expect("translation entry exists");
                if is_update {
                    ctx.write(oid, schema.updated_record(&record, seq))?;
                } else {
                    last = Some(record.as_record().unwrap()[0].clone());
                }
            }
            Ok(last)
        }));
    }

    let mut committed = 0u64;
    let mut missed = 0u64;
    let mut sample: Option<Value> = None;
    for fut in outcomes {
        match fut.wait() {
            Ok(receipt) => {
                committed += 1;
                if sample.is_none() {
                    sample = receipt.result;
                }
            }
            Err(TxnError::Shutdown) => unreachable!(),
            Err(_) => missed += 1,
        }
    }
    let elapsed = started.elapsed();
    println!(
        "session finished in {elapsed:?}: {committed} committed, {missed} missed \
         (miss ratio {:.2} %)",
        missed as f64 / (committed + missed) as f64 * 100.0
    );
    if let Some(Value::Text(address)) = sample {
        println!("sample translation result: {address}");
    }
    println!("engine stats: {:#?}", db.stats());
}
