//! # rodain-tools — operator tooling
//!
//! Command-line tools an operator (or CI job) of a RODAIN deployment
//! needs:
//!
//! * **`rodain-logdump`** — inspect, verify and recover from a disk-log
//!   directory (the mirror's spool or a contingency log):
//!   `rodain-logdump dump|verify|recover <log-dir> [options]`
//! * **`rodain-tracegen`** — produce and inspect the "off-line generated
//!   test files" the paper's experiments are driven by:
//!   `rodain-tracegen generate|info …`
//! * **`rodain-doclint`** — CI lint: intra-repo markdown links must
//!   resolve and `METRICS.md` must match the metric names the source
//!   registers: `rodain-doclint [repo-root]`
//!
//! The library part holds the logic so it is unit-testable; the binaries
//! are thin argument parsers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doclint;
pub mod logdump;
pub mod tracegen;

/// Minimal flag parser: `--key value` pairs plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: std::collections::HashMap<String, String>,
    /// Bare `--flags` without a value.
    pub flags: std::collections::HashSet<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_owned(), value);
                    }
                    _ => {
                        out.flags.insert(key.to_owned());
                    }
                }
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// Typed option lookup with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.options
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_options_and_flags() {
        let args = Args::parse(
            ["dump", "/tmp/log", "--limit", "10", "--verbose"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(args.positional, vec!["dump", "/tmp/log"]);
        assert_eq!(args.get_or("limit", 0usize), 10);
        assert!(args.flags.contains("verbose"));
        assert_eq!(args.get_or("missing", 7u32), 7);
    }

    #[test]
    fn flag_followed_by_flag() {
        let args = Args::parse(["--a", "--b", "x"].into_iter().map(String::from));
        assert!(args.flags.contains("a"));
        assert_eq!(args.options.get("b").map(String::as_str), Some("x"));
    }
}
