//! The seeded chaos scenarios run in CI, plus the reproducibility checks.
//!
//! Reproduce any failing seed with:
//! `CHAOS_SEED=<seed> cargo test -p rodain-chaos`

use rodain_chaos::{
    ChaosConfig, ChaosHarness, FallbackPolicy, FaultEvent, FaultPlan, PlannedFault,
};
use rodain_db::{MirrorLossPolicy, ReplicationMode, Rodain, TxnOptions};
use rodain_log::{FaultyStorage, LogStorage, LogStorageConfig};
use rodain_net::{InProcTransport, LossyLink};
use rodain_node::{recover_store_from_disk, MirrorConfig, MirrorExit, MirrorNode};
use rodain_store::{ObjectId, Store, Value};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodain-chaos-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn s1_link_sever_mid_commit_fails_over_without_losing_acks() {
    let plan = FaultPlan::script(vec![PlannedFault {
        at_commit: 10,
        event: FaultEvent::SeverLink,
    }]);
    let config = ChaosConfig {
        commits: 24,
        ..ChaosConfig::default()
    };
    let verdict = ChaosHarness::new(config).run(&plan);
    assert!(verdict.passed(), "{}", verdict.render());
    // Pre-sever commits were acked by the mirror; post-sever commits go
    // through the pre-opened contingency fallback — nothing is refused.
    assert_eq!(verdict.acked, 24, "{}", verdict.render());
    assert_eq!(verdict.final_mode, ReplicationMode::Contingency);
}

#[test]
fn s2_blackhole_partition_promotes_the_mirror() {
    let plan = FaultPlan::script(vec![PlannedFault {
        at_commit: 8,
        event: FaultEvent::PartitionUntilFailover,
    }]);
    let config = ChaosConfig {
        commits: 20,
        ..ChaosConfig::default()
    };
    let verdict = ChaosHarness::new(config).run(&plan);
    assert!(verdict.passed(), "{}", verdict.render());
    // Every pre-partition ack was applied by the mirror before promotion,
    // and the promoted node serves the rest in contingency mode.
    assert_eq!(verdict.acked, 20, "{}", verdict.render());
    assert_eq!(verdict.final_mode, ReplicationMode::Contingency);
}

#[test]
fn s3_mirror_crash_then_rejoin_restores_mirrored_mode() {
    let plan = FaultPlan::script(vec![
        PlannedFault {
            at_commit: 6,
            event: FaultEvent::CrashMirror,
        },
        PlannedFault {
            at_commit: 14,
            event: FaultEvent::RejoinMirror,
        },
    ]);
    let config = ChaosConfig {
        commits: 24,
        ..ChaosConfig::default()
    };
    let verdict = ChaosHarness::new(config).run(&plan);
    assert!(verdict.passed(), "{}", verdict.render());
    assert_eq!(verdict.acked, 24, "{}", verdict.render());
    // The rejoined mirror converged (the harness checks replica equality
    // at quiescence) and the pair is whole again.
    assert_eq!(verdict.final_mode, ReplicationMode::Mirrored);
    assert!(verdict.render().contains("mirror converged"));
}

#[test]
fn s4_fsync_failure_in_contingency_mode_never_loses_acked_commits() {
    let dir = scratch_dir("s4");
    let storage = LogStorage::open(LogStorageConfig::new(&dir)).unwrap();
    let (faulty, disk_ctl) = FaultyStorage::new(storage);
    let mut acked = [false; 10];
    {
        let db = Rodain::builder()
            .workers(1)
            .contingency_storage(faulty)
            .commit_gate_timeout(Duration::from_millis(500))
            .build()
            .unwrap();
        assert_eq!(db.replication_mode(), ReplicationMode::Contingency);
        for i in 0..10u64 {
            if i == 5 {
                disk_ctl.fail_next_flushes(1);
            }
            let result = db.execute(TxnOptions::soft_ms(5_000), move |ctx| {
                ctx.write(ObjectId(i), Value::Int(i as i64 * 7))?;
                Ok(None)
            });
            acked[i as usize] = result.is_ok();
        }
    } // drop: flush + shutdown
    assert!(!acked[5], "a commit whose fsync failed must not be acked");
    assert_eq!(acked.iter().filter(|a| **a).count(), 9);
    assert_eq!(disk_ctl.injected(), 1);

    // Cold-start from the log: every acked commit must have survived. The
    // unacked one may or may not be present (its record can ride a later
    // flush); durability only promises the acked set.
    let cold = recover_store_from_disk(&dir).unwrap();
    for (i, &was_acked) in acked.iter().enumerate() {
        if was_acked {
            assert_eq!(
                cold.store.read(ObjectId(i as u64)).map(|(v, _)| v),
                Some(Value::Int(i as i64 * 7)),
                "acked commit {i} lost after restart"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn s5_corrupted_frame_is_rejected_and_commits_survive_via_fallback() {
    let fallback_dir = scratch_dir("s5");
    let db = Rodain::builder()
        .workers(2)
        .commit_gate_timeout(Duration::from_millis(250))
        .build()
        .unwrap();
    db.load_initial(ObjectId(0), Value::Int(0));

    let (primary_side, mirror_side) = InProcTransport::pair();
    let (lossy, control) = LossyLink::new(primary_side);
    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        store,
        Arc::new(mirror_side),
        None,
        MirrorConfig {
            poll_interval: Duration::from_millis(1),
            heartbeat_interval: Duration::from_millis(10),
            peer_timeout: Duration::from_millis(100),
            suspect_rounds: 3,
            snapshot_dir: None,
            takeover_workers: 2,
        },
    );
    let handle = std::thread::spawn(move || {
        mirror.join().expect("mirror join");
        mirror.run()
    });
    db.attach_mirror(
        Arc::new(lossy),
        MirrorLossPolicy::Contingency {
            dir: fallback_dir.clone(),
            segment_bytes: None,
        },
    )
    .unwrap();
    assert_eq!(db.replication_mode(), ReplicationMode::Mirrored);

    let increment = |db: &Rodain| {
        db.execute(TxnOptions::soft_ms(5_000), |ctx| {
            let v = ctx.read(ObjectId(0))?.unwrap().as_int().unwrap();
            ctx.write(ObjectId(0), Value::Int(v + 1))?;
            Ok(None)
        })
    };

    // One clean round trip first.
    increment(&db).unwrap();
    let mut committed = 1i64;

    // Corrupt outbound frames until one hits a commit record: the mirror
    // rejects it and stops acking, the commit gate times out, and the
    // engine fails over — but the corrupted-away commit itself must STILL
    // be acknowledged, resolved through the contingency fallback.
    let mut tries = 0;
    while db.replication_mode() == ReplicationMode::Mirrored {
        tries += 1;
        assert!(tries <= 20, "engine never degraded after corruption");
        control.corrupt_next();
        increment(&db).expect("commit must survive corruption via fallback");
        committed += 1;
    }
    assert_eq!(db.replication_mode(), ReplicationMode::Contingency);
    assert_eq!(db.get(ObjectId(0)), Some(Value::Int(committed)));

    // The mirror saw at least one undecodable frame and then the closed
    // link (mark_down closes the transport so the peer exits promptly).
    let (exit, report) = handle.join().unwrap();
    assert_eq!(exit, MirrorExit::PrimaryFailed);
    assert!(
        report.ignored >= 1,
        "mirror never rejected a corrupted frame: {report:?}"
    );

    // Post-degradation commits (including the drained one) are on disk.
    drop(db);
    let cold = recover_store_from_disk(&fallback_dir).unwrap();
    assert!(cold.stats.committed >= 1);
    let _ = std::fs::remove_dir_all(&fallback_dir);
}

#[test]
fn fixed_seed_runs_are_byte_for_byte_reproducible() {
    let seed = 0x00C0_FFEE;
    let plan_a = FaultPlan::generate(seed, 36);
    let plan_b = FaultPlan::generate(seed, 36);
    assert_eq!(plan_a.render(), plan_b.render());

    let config = ChaosConfig {
        commits: 36,
        ..ChaosConfig::default()
    };
    let verdict_a = ChaosHarness::new(config.clone()).run(&plan_a);
    let verdict_b = ChaosHarness::new(config).run(&plan_b);
    assert!(verdict_a.passed(), "{}", verdict_a.render());
    assert_eq!(
        verdict_a.render(),
        verdict_b.render(),
        "same seed, same config: the verdict must be byte-identical"
    );
}

#[test]
fn seeded_smoke_suite_honors_chaos_seed() {
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(raw) => vec![raw
            .trim()
            .parse()
            .expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![1, 7, 1945],
    };
    for seed in seeds {
        let plan = FaultPlan::generate(seed, 32);
        let config = ChaosConfig {
            commits: 32,
            ..ChaosConfig::default()
        };
        let verdict = ChaosHarness::new(config).run(&plan);
        assert!(
            verdict.passed(),
            "seed {seed} violated durability invariants\n{}\n{}",
            plan.render(),
            verdict.render()
        );
    }
}

#[test]
fn volatile_fallback_policy_also_holds_invariants() {
    // Same discipline with no fallback disk: degraded commits are acked
    // volatile, which the one-sided ledger still bounds correctly.
    let plan = FaultPlan::script(vec![
        PlannedFault {
            at_commit: 5,
            event: FaultEvent::CrashMirror,
        },
        PlannedFault {
            at_commit: 11,
            event: FaultEvent::RejoinMirror,
        },
    ]);
    let config = ChaosConfig {
        commits: 16,
        fallback: FallbackPolicy::Volatile,
        ..ChaosConfig::default()
    };
    let verdict = ChaosHarness::new(config).run(&plan);
    assert!(verdict.passed(), "{}", verdict.render());
    assert_eq!(verdict.final_mode, ReplicationMode::Mirrored);
}
