//! # rodain-sim — deterministic simulation of the RODAIN node pair
//!
//! The paper's measurements ran on two 200 MHz Pentium Pro machines under
//! Chorus/ClassiX. We do not have that testbed; per DESIGN.md §2 this crate
//! substitutes a **discrete-event simulation** whose calibrated service
//! times preserve the ratios that drive the figures: per-transaction CPU
//! cost vs. deadlines, mirror round-trip vs. synchronous disk flush, and
//! the 50-transaction active limit of the overload manager.
//!
//! The simulation is *not* a re-implementation of the database logic: it
//! executes transactions against the **real** [`rodain_store::Store`],
//! validates them with the **real** [`rodain_occ`] controllers, schedules
//! them with the **real** [`rodain_sched`] policies and generates **real**
//! [`rodain_log`] record groups — only *time* (CPU bursts, network latency,
//! disk flushes) is simulated. Conflicts, restarts, interval adjustments
//! and admission decisions are therefore produced by the same code paths a
//! production deployment runs.
//!
//! Entry points: [`Simulation::run`] for one session, [`run_repetitions`]
//! for the paper's "repeated at least 20 times, means reported" protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod metrics;
mod runner;

pub use config::{DiskMode, FailureInjection, HardwareModel, LoggingMode, SimConfig, TakeoverKind};
pub use engine::Simulation;
pub use metrics::{AggregateMetrics, LatencyStats, SimMetrics};
pub use runner::{run_repetitions, run_session};
