//! The availability story: primary failure, near-instantaneous mirror
//! takeover, contingency operation, and rejoin of the recovered node.
//!
//! Run with: `cargo run --example failover`
//!
//! Walks the full role cycle of DESIGN.md §6 / the paper §2:
//! `Primary ∥ Mirror → (primary dies) → ContingencyPrimary → (recovered
//! node rejoins as Mirror) → Primary ∥ Mirror`.

use rodain::db::{MirrorLossPolicy, Rodain, TxnOptions};
use rodain::net::InProcTransport;
use rodain::node::{MirrorConfig, MirrorExit, MirrorNode, NodeRole, RoleEvent, RoleMachine};
use rodain::store::Store;
use rodain::{ObjectId, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_config() -> MirrorConfig {
    MirrorConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        peer_timeout: Duration::from_millis(50),
        suspect_rounds: 3,
        snapshot_dir: None,
        takeover_workers: 2,
    }
}

fn main() {
    let log_dir = std::env::temp_dir().join(format!("rodain-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&log_dir);

    // ── Phase 1: a healthy pair ───────────────────────────────────────────
    println!("phase 1: primary + mirror running");
    let (primary_side, mirror_side) = InProcTransport::pair();
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        mirror_store.clone(),
        Arc::new(mirror_side),
        None,
        fast_config(),
    );
    let applied = mirror.applied_csn_handle();
    let mut mirror_role = RoleMachine::new(NodeRole::Mirror);
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().unwrap();
        mirror.run()
    });

    let primary = Rodain::builder()
        .workers(2)
        .mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .build()
        .unwrap();
    for i in 0..500u64 {
        primary
            .execute(TxnOptions::firm_ms(100), move |ctx| {
                ctx.write(ObjectId(i % 50), Value::Int(i as i64))?;
                Ok(None)
            })
            .unwrap();
    }
    while applied.load(Ordering::Acquire) < 500 {
        std::thread::sleep(Duration::from_millis(1));
    }
    println!("  500 transactions committed; mirror is current (csn 500)");

    // ── Phase 2: the primary crashes ─────────────────────────────────────
    println!("phase 2: killing the primary…");
    let crash_at = Instant::now();
    drop(primary); // the process dies; the link closes

    let (exit, report) = mirror_thread.join().unwrap();
    assert_eq!(exit, MirrorExit::PrimaryFailed);
    mirror_role.apply(RoleEvent::PeerFailed).unwrap();
    println!(
        "  watchdog fired after {:?}; mirror promotes to {} \
         ({} txns were applied, {} in-flight discarded)",
        crash_at.elapsed(),
        mirror_role.role(),
        report.txns_applied,
        report.discarded_at_exit
    );

    // The promoted node serves immediately from its in-memory copy, in
    // Contingency mode (synchronous disk logging).
    let promoted = Rodain::builder()
        .workers(2)
        .store(mirror_store)
        .contingency_log(&log_dir)
        .build()
        .unwrap();
    let first = promoted
        .execute(TxnOptions::firm_ms(100), |ctx| ctx.read(ObjectId(10)))
        .unwrap();
    println!(
        "  unavailability window ≈ {:?}; first read after takeover: {:?}",
        crash_at.elapsed(),
        first.result.unwrap()
    );
    assert!(mirror_role.requires_sync_disk());

    // ── Phase 3: the failed node recovers and rejoins as Mirror ─────────
    println!("phase 3: recovered node rejoins as mirror");
    let mut old_primary_role = RoleMachine::new(NodeRole::Primary);
    old_primary_role.apply(RoleEvent::LocalFailure).unwrap();
    old_primary_role.apply(RoleEvent::RecoveryComplete).unwrap();
    assert_eq!(old_primary_role.role(), NodeRole::Mirror);

    let (new_primary_side, new_mirror_side) = InProcTransport::pair();
    let rejoined_store = Arc::new(Store::new());
    let mut rejoined = MirrorNode::new(
        rejoined_store.clone(),
        Arc::new(new_mirror_side),
        None,
        fast_config(),
    );
    let rejoined_shutdown = rejoined.shutdown_handle();
    let rejoined_thread = std::thread::spawn(move || {
        let next = rejoined.join().unwrap();
        println!("  state transfer complete; live stream resumes at {next:?}");
        rejoined.run()
    });
    promoted
        .attach_mirror(
            Arc::new(new_primary_side),
            MirrorLossPolicy::ContinueVolatile,
        )
        .unwrap();
    mirror_role.apply(RoleEvent::PeerJoined).unwrap();
    println!("  promoted node is a full {} again", mirror_role.role());

    promoted
        .execute(TxnOptions::firm_ms(100), |ctx| {
            ctx.write(ObjectId(999), Value::Text("post-rejoin".into()))?;
            Ok(None)
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while rejoined_store.read(ObjectId(999)).is_none() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    println!(
        "  rejoined mirror sees post-rejoin write: {:?}",
        rejoined_store.read(ObjectId(999)).unwrap().0
    );

    rejoined_shutdown.store(true, Ordering::Release);
    rejoined_thread.join().unwrap();
    let _ = std::fs::remove_dir_all(&log_dir);
    println!("full failure cycle complete ✔");
}
