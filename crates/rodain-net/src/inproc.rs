//! In-process transport.

use crate::{NetError, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A transport backed by a pair of cross-wired channels — the default for
/// tests and for running the Primary and Mirror inside one process (the
/// paper's "RODAIN Node" is a primary/mirror *pair*; co-locating them is
/// useful for development even though it forfeits the fault independence).
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    open: Arc<AtomicBool>,
    peer_open: Arc<AtomicBool>,
}

impl InProcTransport {
    /// Create a connected pair of endpoints.
    #[must_use]
    pub fn pair() -> (InProcTransport, InProcTransport) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        let a_open = Arc::new(AtomicBool::new(true));
        let b_open = Arc::new(AtomicBool::new(true));
        (
            InProcTransport {
                tx: a_tx,
                rx: a_rx,
                open: Arc::clone(&a_open),
                peer_open: Arc::clone(&b_open),
            },
            InProcTransport {
                tx: b_tx,
                rx: b_rx,
                open: b_open,
                peer_open: a_open,
            },
        )
    }

    fn check_open(&self) -> Result<(), NetError> {
        if self.open.load(Ordering::Acquire) && self.peer_open.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(NetError::Disconnected)
        }
    }
}

impl Transport for InProcTransport {
    fn send(&self, frame: Bytes) -> Result<(), NetError> {
        self.check_open()?;
        self.tx.send(frame).map_err(|_| NetError::Disconnected)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError> {
        // Drain queued frames even if the peer just closed; only report
        // disconnection once the queue is empty.
        if timeout.is_zero() {
            return self.try_recv();
        }
        match self.rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => {
                self.check_open()?;
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NetError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => {
                self.check_open()?;
                Ok(None)
            }
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn is_connected(&self) -> bool {
        self.open.load(Ordering::Acquire) && self.peer_open.load(Ordering::Acquire)
    }

    fn close(&self) {
        self.open.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_exchanges_frames_both_ways() {
        let (a, b) = InProcTransport::pair();
        a.send(Bytes::from_static(b"ping")).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)).unwrap().unwrap(),
            Bytes::from_static(b"ping")
        );
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn ordering_is_preserved() {
        let (a, b) = InProcTransport::pair();
        for i in 0..100u8 {
            a.send(Bytes::from(vec![i])).unwrap();
        }
        for i in 0..100u8 {
            assert_eq!(b.try_recv().unwrap().unwrap()[0], i);
        }
    }

    #[test]
    fn timeout_returns_none() {
        let (a, _b) = InProcTransport::pair();
        assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        assert_eq!(a.try_recv().unwrap(), None);
    }

    #[test]
    fn close_disconnects_both_ends() {
        let (a, b) = InProcTransport::pair();
        a.close();
        assert!(!a.is_connected());
        assert!(!b.is_connected());
        assert_eq!(b.send(Bytes::new()), Err(NetError::Disconnected));
        assert_eq!(a.send(Bytes::new()), Err(NetError::Disconnected));
        assert_eq!(
            b.recv_timeout(Duration::from_millis(1)),
            Err(NetError::Disconnected)
        );
    }

    #[test]
    fn queued_frames_drain_after_close() {
        let (a, b) = InProcTransport::pair();
        a.send(Bytes::from_static(b"last words")).unwrap();
        a.close();
        // The already-queued frame is still deliverable.
        assert_eq!(
            b.try_recv().unwrap().unwrap(),
            Bytes::from_static(b"last words")
        );
        assert_eq!(b.try_recv(), Err(NetError::Disconnected));
    }
}
