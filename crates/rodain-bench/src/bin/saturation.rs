//! SATURATION experiment: where the knee sits and what kills transactions
//! there (the paper: mostly the overload manager).
//!
//! `cargo run -p rodain-bench --release --bin saturation [-- --quick]`

use rodain_bench::experiments::{saturation, SweepOptions};

fn main() {
    let table = saturation(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("saturation").unwrap());
}
