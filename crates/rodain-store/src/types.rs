//! Core identifier and value types shared by every RODAIN crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data object in the main-memory database.
///
/// RODAIN is an object-oriented database; objects are addressed by a stable
/// 64-bit identifier. The workload layer maps application keys (for example
/// subscriber numbers in the number-translation service) onto `ObjectId`s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Hash-partition this id into one of `n` buckets.
    ///
    /// This Fibonacci multiplicative hash (the golden-ratio constant
    /// scrambles sequential ids into the high bits) is the *canonical*
    /// partitioning function of the object-id space: the shard router uses
    /// it to place objects on engines, and parallel redo replay uses it to
    /// assign log records to worker streams. Keeping one definition here
    /// guarantees both layers agree on ownership.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn partition(self, n: usize) -> usize {
        assert!(n > 0, "partition count must be non-zero");
        let h = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        (h as usize) % n
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// Identifier of a transaction.
///
/// Transaction identifiers are assigned by the engine at admission and are
/// unique within a primary node's lifetime. They appear in every redo log
/// record so the mirror can regroup interleaved records per transaction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for TxnId {
    fn from(v: u64) -> Self {
        TxnId(v)
    }
}

/// A logical commit/validation timestamp.
///
/// Validation timestamps define the *true validation order* of transactions,
/// which the paper uses to reorder the log stream on the mirror node. They
/// are dense, monotone and assigned atomically at validation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Ts(pub u64);

impl Ts {
    /// The zero timestamp; committed initial state carries this timestamp.
    pub const ZERO: Ts = Ts(0);
    /// The largest representable timestamp (used as +infinity in intervals).
    pub const MAX: Ts = Ts(u64::MAX);

    /// The next timestamp, saturating at [`Ts::MAX`].
    #[must_use]
    pub fn next(self) -> Ts {
        Ts(self.0.saturating_add(1))
    }

    /// The previous timestamp, saturating at [`Ts::ZERO`].
    #[must_use]
    pub fn prev(self) -> Ts {
        Ts(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            write!(f, "ts(∞)")
        } else {
            write!(f, "ts({})", self.0)
        }
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u64> for Ts {
    fn from(v: u64) -> Self {
        Ts(v)
    }
}

/// A data object's value.
///
/// RODAIN's telecom workloads store small structured records (a number
/// translation entry is a routing address plus service flags). `Value` keeps
/// the common shapes cheap while remaining serializable into redo-log
/// after-images.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Value {
    /// Absent / tombstone value. Installing `Null` deletes the object.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A short text field (e.g. a routing address).
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A composite record of fields.
    Record(Vec<Value>),
}

impl Value {
    /// Whether this value is the `Null` tombstone.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate heap size of the value in bytes, used for store statistics
    /// and log-volume accounting.
    #[must_use]
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 0,
            Value::Int(_) => 8,
            Value::Text(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::Record(fields) => {
                fields.iter().map(Value::approx_size).sum::<usize>() + 8 * fields.len()
            }
        }
    }

    /// Convenience accessor: the integer payload, if this is `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor: the text payload, if this is `Text`.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor: the record fields, if this is `Record`.
    #[must_use]
    pub fn as_record(&self) -> Option<&[Value]> {
        match self {
            Value::Record(fields) => Some(fields),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_next_prev_saturate() {
        assert_eq!(Ts::MAX.next(), Ts::MAX);
        assert_eq!(Ts::ZERO.prev(), Ts::ZERO);
        assert_eq!(Ts(5).next(), Ts(6));
        assert_eq!(Ts(5).prev(), Ts(4));
    }

    #[test]
    fn ts_ordering() {
        assert!(Ts(1) < Ts(2));
        assert!(Ts::ZERO < Ts::MAX);
    }

    #[test]
    fn value_sizes() {
        assert_eq!(Value::Null.approx_size(), 0);
        assert_eq!(Value::Int(7).approx_size(), 8);
        assert_eq!(Value::Text("abcd".into()).approx_size(), 4);
        assert_eq!(
            Value::Record(vec![Value::Int(1), Value::Text("xy".into())]).approx_size(),
            8 + 2 + 16
        );
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Text("a".into()).as_int(), None);
        assert_eq!(Value::Text("a".into()).as_text(), Some("a"));
        let rec = Value::Record(vec![Value::Int(1)]);
        assert_eq!(rec.as_record().unwrap().len(), 1);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(42i64), Value::Int(42));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
    }

    #[test]
    fn partition_is_stable_in_range_and_balanced() {
        for oid in 0..10_000u64 {
            let p = ObjectId(oid).partition(4);
            assert!(p < 4);
            assert_eq!(p, ObjectId(oid).partition(4), "partitioning must be stable");
        }
        let mut counts = [0u64; 8];
        for oid in 0..80_000u64 {
            counts[ObjectId(oid).partition(8)] += 1;
        }
        for (bucket, &c) in counts.iter().enumerate() {
            assert!(
                (7_500..=12_500).contains(&c),
                "bucket {bucket} got {c} of 80k sequential ids"
            );
        }
    }

    #[test]
    fn partition_of_one_maps_everything_to_zero() {
        for oid in [0u64, 1, 42, u64::MAX / 2, u64::MAX] {
            assert_eq!(ObjectId(oid).partition(1), 0);
        }
    }

    #[test]
    fn id_display() {
        assert_eq!(format!("{:?}", ObjectId(3)), "obj#3");
        assert_eq!(format!("{:?}", TxnId(9)), "txn#9");
        assert_eq!(format!("{:?}", Ts(4)), "ts(4)");
        assert_eq!(format!("{:?}", Ts::MAX), "ts(∞)");
    }
}
