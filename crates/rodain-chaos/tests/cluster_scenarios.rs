//! Seeded cluster chaos: the 2PC coordinator dies between prepare and
//! decide — over real sockets to real node processes — and recovery
//! must presume abort; dies right after the decision and recovery must
//! roll forward. Either way no acknowledged commit is lost and money is
//! conserved.
//!
//! Reproduce any failing seed with:
//! `CHAOS_SEED=<seed> cargo test -p rodain-chaos --test cluster_scenarios`
//!
//! Skips (passes vacuously) when the `cluster_node` binary is absent;
//! CI builds it and sets `RODAIN_CLUSTER_NODE_BIN`.

use rodain_cluster::harness::{node_binary, NodeProcess, NodeProcessConfig};
use rodain_cluster::{ClusterClient, ClusterCoordinator, ClusterError, ShardMap, ShardOwner};
use rodain_shard::{CrashPoint, ShardOp, ShardRouter};
use rodain_store::{ObjectId, Value};
use rodain_workload::NumberTranslationDb;

const SHARDS: usize = 2;
const OBJECTS: u64 = 16;
const SEED_AMOUNT: i64 = 50;

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(raw) => vec![raw
            .trim()
            .parse()
            .expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![1, 7, 1945],
    }
}

/// splitmix64 — the same generator the chaos harness uses, so seeds
/// perturb the victim pair deterministically.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Cluster {
    node_a: NodeProcess,
    node_b: NodeProcess,
    dirs: (std::path::PathBuf, std::path::PathBuf),
}

impl Cluster {
    fn start(bin: &std::path::Path, tag: &str, seed: u64) -> Cluster {
        let mk_dir = |suffix: &str| {
            let dir = std::env::temp_dir().join(format!(
                "rodain-chaos-cluster-{}-{tag}-{seed}-{suffix}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("scratch dir");
            dir
        };
        let dir_a = mk_dir("a");
        let dir_b = mk_dir("b");
        let node_a = NodeProcess::spawn(bin, &NodeProcessConfig::new(SHARDS, vec![0], &dir_a))
            .expect("spawn node A");
        let node_b = NodeProcess::spawn(bin, &NodeProcessConfig::new(SHARDS, vec![1], &dir_b))
            .expect("spawn node B");
        let boot = ClusterCoordinator::connect(&node_a.peer_addr).expect("boot coordinator");
        let map = ShardMap {
            epoch: 2,
            owners: vec![
                ShardOwner {
                    client_addr: node_a.client_addr.clone(),
                    peer_addr: node_a.peer_addr.clone(),
                },
                ShardOwner {
                    client_addr: node_b.client_addr.clone(),
                    peer_addr: node_b.peer_addr.clone(),
                },
            ],
        };
        let addrs = vec![node_a.peer_addr.clone(), node_b.peer_addr.clone()];
        boot.broadcast_map(&map, &addrs).expect("install map");
        for n in 0..OBJECTS {
            boot.execute(vec![ShardOp::Put {
                oid: ObjectId(n),
                value: Value::Int(SEED_AMOUNT),
            }])
            .expect("seed balance");
        }
        Cluster {
            node_a,
            node_b,
            dirs: (dir_a, dir_b),
        }
    }

    /// A transfer guaranteed to span both shards, derived from `seed`.
    fn cross_shard_pair(&self, seed: u64) -> (ObjectId, ObjectId) {
        let router = ShardRouter::new(SHARDS);
        let pick = |shard: usize, salt: u64| {
            (0..OBJECTS)
                .map(|n| ObjectId((n + mix(seed ^ salt)) % OBJECTS))
                .find(|oid| router.route(*oid) == shard)
                .expect("an object on each shard")
        };
        (pick(0, 0xA), pick(1, 0xB))
    }

    fn audit_sum(&self) -> i64 {
        let mut client =
            ClusterClient::connect(&self.node_a.client_addr, NumberTranslationDb::new(OBJECTS))
                .expect("audit client");
        let mut sum = 0i64;
        for n in 0..OBJECTS {
            match client.get(ObjectId(n)).expect("audit get") {
                rodain_server::Outcome::Ok(value) => sum += value.as_int().unwrap_or(0),
                other => panic!("audit read failed: {other:?}"),
            }
        }
        sum
    }

    fn balance(&self, oid: ObjectId) -> i64 {
        let mut client =
            ClusterClient::connect(&self.node_a.client_addr, NumberTranslationDb::new(OBJECTS))
                .expect("balance client");
        match client.get(oid).expect("balance get") {
            rodain_server::Outcome::Ok(value) => value.as_int().unwrap_or(0),
            other => panic!("balance read failed: {other:?}"),
        }
    }

    fn finish(self) {
        self.node_a.quit();
        self.node_b.quit();
        let _ = std::fs::remove_dir_all(&self.dirs.0);
        let _ = std::fs::remove_dir_all(&self.dirs.1);
    }
}

#[test]
fn coordinator_death_between_prepare_and_decide_presumes_abort() {
    let Some(bin) = node_binary() else {
        eprintln!("cluster_node binary not found; skipping cluster chaos");
        return;
    };
    for seed in seeds() {
        let cluster = Cluster::start(&bin, "pa", seed);
        let (from, to) = cluster.cross_shard_pair(seed);
        let delta = 1 + (mix(seed) % 5) as i64;

        // The coordinator prepares durable intents on both shards over
        // the wire, then dies before writing the decision record.
        let doomed =
            ClusterCoordinator::connect(&cluster.node_a.peer_addr).expect("doomed coordinator");
        let outcome = doomed.execute_with_crash(
            vec![
                ShardOp::Add { oid: from, delta: -delta },
                ShardOp::Add { oid: to, delta },
            ],
            CrashPoint::AfterPrepare,
        );
        assert!(
            matches!(outcome, Err(ClusterError::InjectedCrash(_))),
            "seed {seed}: expected injected crash, got {outcome:?}"
        );
        drop(doomed); // its connections die with it

        // Recovery from a fresh coordinator: no decision record exists
        // anywhere, so both intents are presumed aborted.
        let recovery =
            ClusterCoordinator::connect(&cluster.node_b.peer_addr).expect("recovery coordinator");
        let report = recovery.resolve_all().expect("resolve");
        assert!(
            report.aborted >= 2,
            "seed {seed}: expected both intents presumed aborted, got {report:?}"
        );
        assert_eq!(report.rolled_forward, 0, "seed {seed}");

        // The aborted transfer left no trace and the cluster still
        // commits new work.
        assert_eq!(cluster.balance(from), SEED_AMOUNT, "seed {seed}");
        assert_eq!(cluster.balance(to), SEED_AMOUNT, "seed {seed}");
        assert_eq!(cluster.audit_sum(), OBJECTS as i64 * SEED_AMOUNT, "seed {seed}");
        recovery
            .execute(vec![
                ShardOp::Add { oid: from, delta: 1 },
                ShardOp::Add { oid: to, delta: -1 },
            ])
            .expect("cluster commits after recovery");
        assert_eq!(cluster.audit_sum(), OBJECTS as i64 * SEED_AMOUNT, "seed {seed}");
        cluster.finish();
    }
}

#[test]
fn coordinator_death_after_decision_rolls_forward() {
    let Some(bin) = node_binary() else {
        eprintln!("cluster_node binary not found; skipping cluster chaos");
        return;
    };
    for seed in seeds() {
        let cluster = Cluster::start(&bin, "rf", seed);
        let (from, to) = cluster.cross_shard_pair(seed);
        let delta = 1 + (mix(seed) % 5) as i64;

        // The decision record commits — the transaction is acked — and
        // the coordinator dies before applying or cleaning up.
        let doomed =
            ClusterCoordinator::connect(&cluster.node_a.peer_addr).expect("doomed coordinator");
        let receipt = doomed
            .execute_with_crash(
                vec![
                    ShardOp::Add { oid: from, delta: -delta },
                    ShardOp::Add { oid: to, delta },
                ],
                CrashPoint::AfterDecision,
            )
            .expect("decision committed");
        assert!(receipt.gid != 0, "seed {seed}");
        drop(doomed);

        // Recovery finds the decision record and rolls both intents
        // forward: the acked transfer survives, exactly once.
        let recovery =
            ClusterCoordinator::connect(&cluster.node_b.peer_addr).expect("recovery coordinator");
        let report = recovery.resolve_all().expect("resolve");
        assert!(
            report.rolled_forward >= 2,
            "seed {seed}: expected both intents rolled forward, got {report:?}"
        );
        assert_eq!(cluster.balance(from), SEED_AMOUNT - delta, "seed {seed}");
        assert_eq!(cluster.balance(to), SEED_AMOUNT + delta, "seed {seed}");
        assert_eq!(cluster.audit_sum(), OBJECTS as i64 * SEED_AMOUNT, "seed {seed}");

        // A second sweep finds nothing left to do (idempotent recovery).
        let again = recovery.resolve_all().expect("second resolve");
        assert_eq!(again.rolled_forward, 0, "seed {seed}");
        assert_eq!(again.aborted, 0, "seed {seed}");
        cluster.finish();
    }
}
