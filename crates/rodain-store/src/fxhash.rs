//! A fast, non-cryptographic hasher for small-integer keys.
//!
//! The hot maps in the engine — workspace read/write indexes keyed by
//! [`crate::ObjectId`], active-transaction tables keyed by
//! [`crate::TxnId`], the replication pending map keyed by CSN — all use
//! small dense integer keys, where SipHash's per-key setup cost dominates
//! the probe. This is the FxHash multiply-rotate mix (the rustc hasher):
//! one rotate, one xor, one multiply per 8 bytes, no per-instance state.
//!
//! Implemented in-tree because the workspace carries no external hashing
//! crates; the algorithm is tiny and stable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash: a random odd constant with a good bit mix.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher.
#[derive(Default, Clone, Copy, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(chunk));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut chunk = [0u8; 4];
            chunk.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(chunk)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, so `Default` maps
/// hash identically across instances).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for hot integer-keyed maps.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_small_keys_do_not_collide() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            assert!(seen.insert(h.finish()), "collision at key {k}");
        }
    }

    #[test]
    fn byte_stream_mixes_all_tails() {
        // 8-byte, 4-byte and 1-byte tail paths all feed the state.
        for len in [1usize, 3, 4, 7, 8, 9, 12, 16, 17] {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let full = h.finish();
            let mut h2 = FxHasher::default();
            let mut mutated = bytes.clone();
            mutated[len - 1] ^= 0xff;
            h2.write(&mutated);
            assert_ne!(full, h2.finish(), "tail byte ignored at len {len}");
        }
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 2);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&(k * 2)));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }
}
