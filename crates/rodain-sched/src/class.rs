//! Transaction classes and scheduling metadata.

use rodain_store::TxnId;
use serde::{Deserialize, Serialize};

/// Monotonic time in nanoseconds. The scheduler never reads a clock; the
/// engine (real time) or the simulator (virtual time) supplies `now`.
pub type Nanos = u64;

/// RODAIN's transaction classes (paper §1: "simultaneous execution of firm
/// and soft deadline transactions as well as transactions that do not have
/// deadlines at all").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum TxnClass {
    /// Firm deadline: completing after the deadline is useless; the
    /// transaction is aborted the moment its deadline expires.
    Firm,
    /// Soft deadline: completion after the deadline retains (diminished)
    /// value; the transaction is not killed on expiry, but deadline misses
    /// are still counted by the overload manager.
    Soft,
    /// No deadline. Runs in the execution-time fraction reserved for
    /// non-real-time work, or when no real-time transaction is ready.
    NonRealTime,
}

impl TxnClass {
    /// Whether this class carries a deadline.
    #[must_use]
    pub fn is_real_time(&self) -> bool {
        !matches!(self, TxnClass::NonRealTime)
    }
}

/// Scheduling metadata for one transaction instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskMeta {
    /// The transaction.
    pub txn: TxnId,
    /// Class (firm / soft / non-real-time).
    pub class: TxnClass,
    /// Absolute deadline (ns). `None` iff the class is non-real-time.
    pub deadline: Option<Nanos>,
    /// Arrival time (ns); FIFO tie-break and response-time accounting.
    pub arrival: Nanos,
    /// Estimated execution cost (ns), used by the non-real-time
    /// reservation to decide when enough budget has accrued.
    pub est_cost: Nanos,
}

impl TaskMeta {
    /// A firm-deadline task.
    #[must_use]
    pub fn firm(txn: TxnId, arrival: Nanos, relative_deadline: Nanos, est_cost: Nanos) -> Self {
        TaskMeta {
            txn,
            class: TxnClass::Firm,
            deadline: Some(arrival + relative_deadline),
            arrival,
            est_cost,
        }
    }

    /// A soft-deadline task.
    #[must_use]
    pub fn soft(txn: TxnId, arrival: Nanos, relative_deadline: Nanos, est_cost: Nanos) -> Self {
        TaskMeta {
            txn,
            class: TxnClass::Soft,
            deadline: Some(arrival + relative_deadline),
            arrival,
            est_cost,
        }
    }

    /// A non-real-time task.
    #[must_use]
    pub fn non_real_time(txn: TxnId, arrival: Nanos, est_cost: Nanos) -> Self {
        TaskMeta {
            txn,
            class: TxnClass::NonRealTime,
            deadline: None,
            arrival,
            est_cost,
        }
    }

    /// The EDF priority key: absolute deadline, with non-real-time tasks at
    /// the very back. Smaller is more urgent.
    #[must_use]
    pub fn priority_key(&self) -> Nanos {
        self.deadline.unwrap_or(Nanos::MAX)
    }

    /// Has the deadline passed at `now`? Always `false` for non-real-time.
    #[must_use]
    pub fn expired(&self, now: Nanos) -> bool {
        match self.deadline {
            Some(d) => now > d,
            None => false,
        }
    }

    /// Remaining slack at `now`: deadline minus now minus estimated cost.
    /// `None` for non-real-time tasks (infinite slack).
    #[must_use]
    pub fn slack(&self, now: Nanos) -> Option<i64> {
        self.deadline
            .map(|d| d as i64 - now as i64 - self.est_cost as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert!(TxnClass::Firm.is_real_time());
        assert!(TxnClass::Soft.is_real_time());
        assert!(!TxnClass::NonRealTime.is_real_time());
    }

    #[test]
    fn firm_deadline_is_absolute() {
        let t = TaskMeta::firm(TxnId(1), 1_000, 500, 100);
        assert_eq!(t.deadline, Some(1_500));
        assert!(!t.expired(1_500));
        assert!(t.expired(1_501));
        assert_eq!(t.priority_key(), 1_500);
    }

    #[test]
    fn non_real_time_never_expires() {
        let t = TaskMeta::non_real_time(TxnId(1), 0, 100);
        assert!(!t.expired(u64::MAX));
        assert_eq!(t.priority_key(), u64::MAX);
        assert_eq!(t.slack(123), None);
    }

    #[test]
    fn slack_accounts_for_cost() {
        let t = TaskMeta::firm(TxnId(1), 0, 1_000, 300);
        assert_eq!(t.slack(0), Some(700));
        assert_eq!(t.slack(800), Some(-100));
    }
}
