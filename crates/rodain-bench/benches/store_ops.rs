//! Microbenchmarks of the main-memory store substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rodain_store::{ObjectId, Store, Ts, TxnId, Value, Workspace};

fn populated(n: u64) -> Store {
    let store = Store::new();
    for i in 0..n {
        store.load_initial(
            ObjectId(i),
            Value::Record(vec![
                Value::Text(format!("+358-9-{i:07}")),
                Value::Int(0),
                Value::Int(0),
            ]),
        );
    }
    store
}

fn bench_store(c: &mut Criterion) {
    let store = populated(30_000);
    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Elements(1));

    group.bench_function("read", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 30_000;
            black_box(store.read(ObjectId(i)))
        })
    });

    group.bench_function("version", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 30_000;
            black_box(store.version(ObjectId(i)))
        })
    });

    group.bench_function("install", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store.install(ObjectId(i % 30_000), Value::Int(i as i64), Ts(i));
        })
    });

    group.bench_function("workspace_read_write", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let mut ws = Workspace::new(TxnId(i));
            let v = ws.read(&store, ObjectId(i % 30_000));
            ws.write(ObjectId(i % 30_000), v.unwrap_or(Value::Null));
            black_box(ws.write_count())
        })
    });
    group.finish();

    let mut group = c.benchmark_group("store-bulk");
    group.throughput(Throughput::Elements(30_000));
    group.sample_size(20);
    group.bench_function("snapshot_30k", |b| b.iter(|| black_box(store.snapshot())));
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
