//! Simulation configuration: hardware model and logging mode.

use rodain_occ::Protocol;
use rodain_sched::{OverloadConfig, ReservationConfig};
use serde::{Deserialize, Serialize};

/// Whether the log reaches a disk, and how.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskMode {
    /// Log records are stored on disk ("true log writes", Fig 2).
    On,
    /// Disk writing turned off (Fig 3): log records are still generated and
    /// shipped/handled, but never hit a platter.
    Off,
}

/// The system configuration under test — the paper's experiment matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoggingMode {
    /// Logging disabled entirely: the "No logs" optimal reference of Fig 3.
    NoLogs,
    /// A single node (Contingency mode): the log writer stores records
    /// directly to the local disk; with [`DiskMode::On`] the flush is on
    /// the commit critical path.
    SingleNode {
        /// Disk on/off.
        disk: DiskMode,
    },
    /// Primary + Mirror: records ship to the mirror; the commit waits for
    /// the mirror's acknowledgement of the commit record (one message
    /// round-trip). The mirror spools the reordered log to its own disk
    /// asynchronously when [`DiskMode::On`].
    TwoNode {
        /// Mirror-side disk on/off.
        disk: DiskMode,
    },
}

impl LoggingMode {
    /// Stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            LoggingMode::NoLogs => "no-logs",
            LoggingMode::SingleNode { disk: DiskMode::On } => "1-node-disk",
            LoggingMode::SingleNode {
                disk: DiskMode::Off,
            } => "1-node-nodisk",
            LoggingMode::TwoNode { disk: DiskMode::On } => "2-node-disk",
            LoggingMode::TwoNode {
                disk: DiskMode::Off,
            } => "2-node-nodisk",
        }
    }
}

/// Calibrated service times standing in for the paper's testbed
/// (200 MHz Pentium Pro, LAN, period disk). All values in nanoseconds.
///
/// Calibration targets (DESIGN.md §2): CPU saturation at 270–300 tps
/// depending on write fraction; mirror commit round-trip ≈ 1 ms; a
/// synchronous disk flush ≈ 10 ms with no cross-transaction batching in the
/// prototype (the COMMITPATH ablation sweeps the batch size).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HardwareModel {
    /// Number of processors executing transactions. The paper's prototype
    /// ran on one Pentium Pro (default 1); the CCABLATE extension uses 2
    /// so conflicting read phases genuinely interleave.
    pub cpus: usize,
    /// Fixed CPU cost per transaction (parse, setup, bookkeeping).
    pub cpu_txn_base_ns: u64,
    /// CPU cost per object read.
    pub cpu_per_read_ns: u64,
    /// CPU cost per deferred write (after-image buffering).
    pub cpu_per_write_ns: u64,
    /// CPU cost of atomic validation.
    pub cpu_validate_ns: u64,
    /// CPU cost of generating one log record.
    pub cpu_per_log_record_ns: u64,
    /// Extra per-access CPU for protocols that do concurrency-control work
    /// on every access (OCC-TI's eager pruning, 2PL-HP's lock table).
    pub cc_access_overhead_ns: u64,
    /// Primary→mirror→primary message round-trip.
    pub net_rtt_ns: u64,
    /// Mirror-side processing per log record (ingest + reorder), added to
    /// the commit acknowledgement latency.
    pub mirror_ingest_per_record_ns: u64,
    /// One physical log flush (seek + rotation + transfer).
    pub disk_flush_ns: u64,
    /// Commit groups the *primary's* synchronous log writer coalesces per
    /// flush. The prototype flushed per transaction (1); group commit is
    /// the COMMITPATH ablation.
    pub disk_max_batch: usize,
    /// Commit groups the *mirror's* asynchronous spooler writes per flush
    /// (a sequential append batches naturally).
    pub mirror_disk_max_batch: usize,
    /// Mirror spool queue length at which commit acknowledgements start to
    /// be delayed (the paper's "system gets trashed from the buffered
    /// logs" backpressure).
    pub mirror_disk_queue_cap: usize,
}

impl Default for HardwareModel {
    fn default() -> Self {
        HardwareModel {
            cpus: 1,
            cpu_txn_base_ns: 2_600_000,
            cpu_per_read_ns: 100_000,
            cpu_per_write_ns: 150_000,
            cpu_validate_ns: 200_000,
            cpu_per_log_record_ns: 150_000,
            cc_access_overhead_ns: 40_000,
            net_rtt_ns: 800_000,
            mirror_ingest_per_record_ns: 30_000,
            disk_flush_ns: 10_000_000,
            disk_max_batch: 1,
            mirror_disk_max_batch: 32,
            mirror_disk_queue_cap: 256,
        }
    }
}

impl HardwareModel {
    /// CPU demand of one execution attempt of a transaction with `reads`
    /// reads and `writes` deferred writes (excluding validation/logging).
    #[must_use]
    pub fn read_phase_ns(&self, reads: u64, writes: u64, eager_cc: bool) -> u64 {
        let access_cc = if eager_cc {
            self.cc_access_overhead_ns * (reads + writes)
        } else {
            0
        };
        self.cpu_txn_base_ns
            + self.cpu_per_read_ns * reads
            + self.cpu_per_write_ns * writes
            + access_cc
    }

    /// CPU demand of the validation + log-generation step for a commit
    /// group of `records` records.
    #[must_use]
    pub fn validate_phase_ns(&self, records: u64) -> u64 {
        self.cpu_validate_ns + self.cpu_per_log_record_ns * records
    }
}

/// What happens when the primary is killed mid-session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TakeoverKind {
    /// The hot stand-by promotes: watchdog detection + takeover cost, then
    /// service resumes in Contingency mode.
    MirrorTakeover,
    /// No stand-by: the node reboots and replays its disk log before
    /// serving again ("the database would be down much longer").
    DiskRecovery,
}

/// Failure-injection settings for the TAKEOVER experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureInjection {
    /// When the primary dies (ns since session start).
    pub fail_at_ns: u64,
    /// Recovery strategy under test.
    pub takeover: TakeoverKind,
    /// Watchdog silence before the failure is declared.
    pub detection_ns: u64,
    /// Fixed promotion cost (mirror switches role, opens for business).
    pub takeover_cost_ns: u64,
    /// Reboot cost before disk replay can start (DiskRecovery only).
    pub reboot_ns: u64,
    /// Disk-log replay cost per stored log record (DiskRecovery only).
    pub replay_per_record_ns: u64,
}

impl Default for FailureInjection {
    fn default() -> Self {
        FailureInjection {
            fail_at_ns: 30_000_000_000, // 30 s
            takeover: TakeoverKind::MirrorTakeover,
            detection_ns: 200_000_000,    // 200 ms watchdog
            takeover_cost_ns: 50_000_000, // 50 ms role switch
            reboot_ns: 20_000_000_000,    // 20 s reboot
            replay_per_record_ns: 40_000, // 40 µs per replayed record
        }
    }
}

/// Everything the simulator needs besides the workload trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// System configuration (the figure series).
    pub mode: LoggingMode,
    /// Hardware service times.
    pub hardware: HardwareModel,
    /// Concurrency-control protocol (the paper uses OCC-DATI).
    #[serde(skip, default = "default_protocol")]
    pub protocol: Protocol,
    /// Overload manager settings (active limit 50 in the prototype).
    #[serde(skip, default)]
    pub overload: OverloadConfigWire,
    /// Non-real-time reservation settings.
    #[serde(skip, default)]
    pub reservation: ReservationConfigWire,
    /// Optional failure injection.
    pub failure: Option<FailureInjection>,
}

fn default_protocol() -> Protocol {
    Protocol::OccDati
}

/// Serializable stand-ins (the sched types live in a crate without serde
/// on its config structs kept intentionally plain).
pub type OverloadConfigWire = OverloadConfig;
/// See [`OverloadConfigWire`].
pub type ReservationConfigWire = ReservationConfig;

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mode: LoggingMode::TwoNode { disk: DiskMode::On },
            hardware: HardwareModel::default(),
            protocol: Protocol::OccDati,
            overload: OverloadConfig::default(),
            reservation: ReservationConfig::default(),
            failure: None,
        }
    }
}

impl SimConfig {
    /// The paper's two-node normal mode.
    #[must_use]
    pub fn two_node(disk: DiskMode) -> Self {
        SimConfig {
            mode: LoggingMode::TwoNode { disk },
            ..SimConfig::default()
        }
    }

    /// The paper's single-node (transient/contingency) mode.
    #[must_use]
    pub fn single_node(disk: DiskMode) -> Self {
        SimConfig {
            mode: LoggingMode::SingleNode { disk },
            ..SimConfig::default()
        }
    }

    /// The "No logs" optimal reference.
    #[must_use]
    pub fn no_logs() -> Self {
        SimConfig {
            mode: LoggingMode::NoLogs,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_are_stable() {
        assert_eq!(LoggingMode::NoLogs.name(), "no-logs");
        assert_eq!(
            LoggingMode::SingleNode { disk: DiskMode::On }.name(),
            "1-node-disk"
        );
        assert_eq!(
            LoggingMode::TwoNode {
                disk: DiskMode::Off
            }
            .name(),
            "2-node-nodisk"
        );
    }

    #[test]
    fn phase_costs_compose() {
        let hw = HardwareModel::default();
        let read_only = hw.read_phase_ns(4, 0, false);
        assert_eq!(read_only, 2_600_000 + 400_000);
        let update_eager = hw.read_phase_ns(2, 2, true);
        assert_eq!(update_eager, 2_600_000 + 200_000 + 300_000 + 160_000);
        assert_eq!(hw.validate_phase_ns(3), 200_000 + 450_000);
    }

    #[test]
    fn calibration_saturates_in_the_paper_band() {
        // Read-only transaction ≈ 3.35 ms ⇒ ~298 tps CPU capacity;
        // all-update ≈ 3.75 ms ⇒ ~267 tps. Matches "2[00] to 3[00]
        // transactions per second depending on the ratio of update
        // transactions".
        let hw = HardwareModel::default();
        let read_txn = hw.read_phase_ns(4, 0, false) + hw.validate_phase_ns(1);
        let update_txn = hw.read_phase_ns(2, 2, false) + hw.validate_phase_ns(3);
        let read_cap = 1e9 / read_txn as f64;
        let update_cap = 1e9 / update_txn as f64;
        assert!(
            (280.0..320.0).contains(&read_cap),
            "read capacity {read_cap}"
        );
        assert!(
            (240.0..290.0).contains(&update_cap),
            "update capacity {update_cap}"
        );
    }

    #[test]
    fn default_config_is_two_node_disk_on() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.mode, LoggingMode::TwoNode { disk: DiskMode::On });
        assert_eq!(cfg.protocol, Protocol::OccDati);
        assert!(cfg.failure.is_none());
    }
}
