//! Property-based tests of the scheduling policies.

use proptest::prelude::*;
use rodain_sched::{
    ActiveSet, Admission, OverloadConfig, OverloadManager, ReadyQueue, ReservationConfig, TaskMeta,
    TxnClass,
};
use rodain_store::TxnId;

fn task(n: u64) -> impl Strategy<Value = TaskMeta> {
    (
        0..n,
        0..1_000u64,
        1..100_000u64,
        prop_oneof![Just(0u8), Just(1), Just(2)],
    )
        .prop_map(|(id, arrival, rel_deadline, class)| match class {
            0 => TaskMeta::firm(TxnId(id), arrival, rel_deadline, 100),
            1 => TaskMeta::soft(TxnId(id), arrival, rel_deadline, 100),
            _ => TaskMeta::non_real_time(TxnId(id), arrival, 100),
        })
}

proptest! {
    /// Without reservation credit, real-time pops come out in EDF order
    /// and non-real-time tasks only after every RT task.
    #[test]
    fn pops_respect_edf(tasks in prop::collection::vec(task(1_000_000), 0..60)) {
        let mut queue = ReadyQueue::new(ReservationConfig {
            fraction: 0.0, // no reservation: strict EDF then non-RT
            max_credit: 0,
        });
        for t in &tasks {
            queue.push(*t);
        }
        let mut expired = Vec::new();
        let mut popped = Vec::new();
        // Pop at time 0 so nothing expires.
        while let Some(t) = queue.pop(0, &mut expired) {
            popped.push(t);
        }
        prop_assert!(expired.is_empty());
        prop_assert_eq!(popped.len(), tasks.len());
        // EDF keys are non-decreasing (non-RT mapped to MAX at the back).
        for pair in popped.windows(2) {
            prop_assert!(
                pair[0].priority_key() <= pair[1].priority_key(),
                "{:?} before {:?}", pair[0], pair[1]
            );
        }
    }

    /// Every firm task whose deadline passed is reported expired, never
    /// returned; soft and non-RT tasks always come out.
    #[test]
    fn expiry_partitions_exactly(
        tasks in prop::collection::vec(task(1_000_000), 0..60),
        now in 0..200_000u64,
    ) {
        let mut queue = ReadyQueue::new(ReservationConfig::default());
        for t in &tasks {
            queue.push(*t);
        }
        let mut expired = Vec::new();
        let mut popped = Vec::new();
        while let Some(t) = queue.pop(now, &mut expired) {
            popped.push(t);
        }
        prop_assert_eq!(popped.len() + expired.len(), tasks.len());
        for t in &popped {
            prop_assert!(!(t.class == TxnClass::Firm && t.expired(now)));
        }
        for t in &expired {
            prop_assert!(t.class == TxnClass::Firm && t.expired(now));
        }
    }

    /// The admission decision never lets the active count exceed the
    /// current limit, and evictions only name genuinely active txns.
    #[test]
    fn admission_respects_the_limit(
        arrivals in prop::collection::vec(task(10_000), 1..80),
        limit in 1usize..8,
    ) {
        let mut manager = OverloadManager::new(OverloadConfig {
            base_limit: limit,
            min_limit: 1,
            window: 1_000_000,
            miss_tolerance: 100, // never shrinks in this test
        });
        let mut active = ActiveSet::new();
        for (i, t) in arrivals.iter().enumerate() {
            // Re-key ids so they are unique.
            let t = TaskMeta { txn: TxnId(i as u64), ..*t };
            match manager.admit(t.arrival, &t, &active) {
                Admission::Accept => {
                    active.insert(t);
                }
                Admission::AcceptEvicting(victim) => {
                    prop_assert!(active.contains(victim));
                    prop_assert!(victim != t.txn);
                    active.remove(victim);
                    active.insert(t);
                }
                Admission::Reject => {
                    prop_assert!(active.len() >= limit);
                }
            }
            prop_assert!(active.len() <= limit);
        }
    }

    /// The miss window never reports more misses than recorded and decays
    /// to zero once time moves past the window.
    #[test]
    fn miss_window_is_bounded(
        misses in prop::collection::vec(0..10_000u64, 0..50),
        window in 1..5_000u64,
    ) {
        let mut manager = OverloadManager::new(OverloadConfig {
            base_limit: 50,
            min_limit: 10,
            window,
            miss_tolerance: 0,
        });
        let mut sorted = misses.clone();
        sorted.sort_unstable();
        for t in &sorted {
            manager.record_miss(*t);
        }
        let last = sorted.last().copied().unwrap_or(0);
        prop_assert!(manager.misses_in_window(last) <= sorted.len());
        prop_assert_eq!(manager.misses_in_window(last + window + 1), 0);
        prop_assert_eq!(manager.current_limit(last + window + 1), 50);
    }
}
