//! A condensed version of the paper's experimental study (§4), printed as
//! tables. The full parameter sweeps with 20 repetitions per point live in
//! the `rodain-bench` experiment binaries (`cargo run -p rodain-bench
//! --release --bin all_experiments`).
//!
//! Run with: `cargo run --release --example simulation_study`

use rodain::sim::{run_repetitions, DiskMode, SimConfig};
use rodain::workload::WorkloadSpec;

fn spec(rate: f64, write_fraction: f64) -> WorkloadSpec {
    WorkloadSpec {
        count: 5_000,
        arrival_rate_tps: rate,
        write_fraction,
        ..WorkloadSpec::default()
    }
}

fn main() {
    let reps = 5;

    println!("== Fig 2(a): true log writes, write ratio 50% ==");
    println!("{:>10} {:>14} {:>14}", "tps", "1-node-disk", "2-node-disk");
    for rate in [50.0, 100.0, 150.0, 200.0, 300.0, 400.0] {
        let one = run_repetitions(
            &SimConfig::single_node(DiskMode::On),
            &spec(rate, 0.5),
            reps,
        );
        let two = run_repetitions(&SimConfig::two_node(DiskMode::On), &spec(rate, 0.5), reps);
        println!(
            "{rate:>10.0} {:>13.1}% {:>13.1}%",
            one.miss_ratio_mean * 100.0,
            two.miss_ratio_mean * 100.0
        );
    }

    println!("\n== Fig 2(b): true log writes, arrival rate 300 tps ==");
    println!(
        "{:>10} {:>14} {:>14}",
        "write frac", "1-node-disk", "2-node-disk"
    );
    for wf in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let one = run_repetitions(
            &SimConfig::single_node(DiskMode::On),
            &spec(300.0, wf),
            reps,
        );
        let two = run_repetitions(&SimConfig::two_node(DiskMode::On), &spec(300.0, wf), reps);
        println!(
            "{wf:>10.2} {:>13.1}% {:>13.1}%",
            one.miss_ratio_mean * 100.0,
            two.miss_ratio_mean * 100.0
        );
    }

    println!("\n== Fig 3: disk writes off (no-logs vs 1-node vs 2-node) ==");
    for wf in [0.0, 0.2, 0.8] {
        println!("-- write ratio {:.0}% --", wf * 100.0);
        println!(
            "{:>10} {:>10} {:>10} {:>10}",
            "tps", "no-logs", "1-node", "2-node"
        );
        for rate in [100.0, 200.0, 250.0, 300.0, 350.0, 450.0] {
            let nologs = run_repetitions(&SimConfig::no_logs(), &spec(rate, wf), reps);
            let one = run_repetitions(
                &SimConfig::single_node(DiskMode::Off),
                &spec(rate, wf),
                reps,
            );
            let two = run_repetitions(&SimConfig::two_node(DiskMode::Off), &spec(rate, wf), reps);
            println!(
                "{rate:>10.0} {:>9.1}% {:>9.1}% {:>9.1}%",
                nologs.miss_ratio_mean * 100.0,
                one.miss_ratio_mean * 100.0,
                two.miss_ratio_mean * 100.0
            );
        }
    }

    println!(
        "\nShapes to observe (cf. the paper): the 2-node system dominates the \
         single node doing true disk writes at every rate; with the disk off \
         all three series saturate together at 200–300 tps; the write \
         fraction moves the curves only slightly."
    );
}
