//! The event-driven front-end (DESIGN.md §17).
//!
//! One **loop thread** owns the listener and every client socket
//! (non-blocking, multiplexed through a level-triggered
//! [`rodain_net::Poller`]); a fixed **worker pool** — `min(cores, 16)` by
//! default — decodes frames and drives them through the engine's
//! `submit()`/[`CommitFuture`] path. Requests on one connection execute
//! out of order; responses are correlated by request id, and a deferred
//! request's `CommitPending` frame always precedes its durable frame.
//!
//! Commit completions are delivered by a [`CompletionHook`] installed at
//! submit time: the hook fires *after* the outcome reaches the future, on
//! every resolution path (commit, abort, eviction, admission denial,
//! shutdown), sending the pending entry's key over the loop's message
//! channel and waking the poller — O(1) per completion, no thread parked
//! per in-flight transaction.
//!
//! Backpressure is end-to-end (see [`FrontEndConfig`]): a connection over
//! its in-flight cap or with a backed-up reply queue is *parked* —
//! removed from the read interest set, its already-read bytes preserved
//! in `rbuf` — until it drains, which stalls the peer via TCP flow
//! control; a global in-flight gate answers `Overloaded` from the frame
//! header alone before any decode work, complementing the engine's EDF
//! admission control.

use crate::protocol::{Outcome, Request, Response, MAX_REQUEST_BYTES, PROTOCOL_VERSION};
use crate::server::{
    count_outcome, frame_bytes, immediate_outcome, shard_redirect, submit_request, wire_outcome,
    Backend, FrontEndConfig, FrontEndMetrics, Server, ServerHandle, StatsInner,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rodain_db::{CommitFuture, CompletionHook};
use rodain_net::{Events, Interest, Poller, Waker};
use rodain_workload::NumberTranslationDb;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
/// Longest the loop sleeps with nothing to do; bounds shutdown latency
/// if a wake is ever lost.
const MAX_TICK: Duration = Duration::from_millis(500);
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);
const READ_CHUNK: usize = 16 * 1024;

/// Connection tokens carry the slot in the low half and a generation in
/// the high half, so an event raced against a close-and-reuse of the same
/// slot is recognized as stale instead of hitting the new connection.
fn conn_token(slot: u32, gen: u32) -> u64 {
    (u64::from(gen) << 32) | (u64::from(slot) + 2)
}

/// State a connection shares with the workers: the reply queue they push
/// encoded frames into, and the in-flight request count.
struct ConnShared {
    replies: Mutex<VecDeque<Bytes>>,
    inflight: AtomicUsize,
}

/// A connection, owned by the loop thread.
struct Conn {
    stream: TcpStream,
    gen: u32,
    /// Bytes read but not yet peeled into frames. Preserved intact while
    /// the connection is parked under backpressure.
    rbuf: Vec<u8>,
    /// Frames being written, drained front-first with a partial-write
    /// offset.
    wqueue: VecDeque<Bytes>,
    woffset: usize,
    shared: Arc<ConnShared>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Read interest withdrawn because a cap was hit.
    paused: bool,
    /// Peer half-closed its write side; we serve what is in flight, then
    /// close.
    read_closed: bool,
}

/// A transaction in flight: correlation state held until its
/// [`CompletionHook`] fires.
struct PendingEntry {
    slot: u32,
    gen: u32,
    id: u64,
    deferred: bool,
    conn: Arc<ConnShared>,
    /// Installed by the worker right after `submit` returns. `None` +
    /// `fired_early` covers the race where the hook fires first.
    future: Option<CommitFuture>,
    fired_early: bool,
}

#[derive(Default)]
struct Slab {
    entries: Vec<Option<PendingEntry>>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, entry: PendingEntry) -> usize {
        match self.free.pop() {
            Some(key) => {
                self.entries[key] = Some(entry);
                key
            }
            None => {
                self.entries.push(Some(entry));
                self.entries.len() - 1
            }
        }
    }
}

/// Messages into the loop thread; every send is paired with a
/// [`Waker::wake`] so a blocked poller notices.
enum LoopMsg {
    /// A pending entry's commit outcome is ready.
    Completion { key: usize },
    /// A worker pushed frames onto this connection's reply queue.
    Dirty {
        slot: u32,
        gen: u32,
        conn: Arc<ConnShared>,
    },
    /// A worker hit a protocol violation; drop the connection.
    Kill { slot: u32, gen: u32 },
}

/// A raw frame handed from the loop to the worker pool.
struct WorkItem {
    slot: u32,
    gen: u32,
    conn: Arc<ConnShared>,
    frame: Bytes,
    /// When the frame was peeled off the socket (read-to-dispatch
    /// histogram).
    read_at: Instant,
}

/// State shared between the loop thread and the workers.
struct Shared {
    backend: Backend,
    schema: NumberTranslationDb,
    stats: Arc<StatsInner>,
    fe: Arc<FrontEndMetrics>,
    cfg: FrontEndConfig,
    slab: Mutex<Slab>,
    msgs_tx: Sender<LoopMsg>,
    waker: Arc<Waker>,
    global_inflight: AtomicUsize,
}

impl Shared {
    fn notify(&self, msg: LoopMsg) {
        let _ = self.msgs_tx.send(msg);
        self.waker.wake();
    }
}

/// Start the event-driven front-end: the loop thread plus the worker
/// pool, returning the usual [`ServerHandle`].
pub(crate) fn start(
    server: Server,
    listener: TcpListener,
    config: FrontEndConfig,
) -> std::io::Result<ServerHandle> {
    let cfg = FrontEndConfig {
        workers: config.effective_workers(),
        max_inflight_per_conn: config.max_inflight_per_conn.max(1),
        reply_queue_cap: config.reply_queue_cap.max(1),
        max_global_inflight: config.max_global_inflight.max(1),
    };
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(StatsInner::default());

    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new(&poller, TOK_WAKER)?);
    poller.register(listener.as_raw_fd(), TOK_LISTENER, Interest::READ)?;

    let (msgs_tx, msgs_rx) = unbounded::<LoopMsg>();
    let (work_tx, work_rx) = unbounded::<WorkItem>();
    let shared = Arc::new(Shared {
        backend: server.backend,
        schema: server.schema,
        stats: Arc::clone(&stats),
        fe: Arc::clone(&server.metrics),
        cfg,
        slab: Mutex::new(Slab::default()),
        msgs_tx,
        waker: Arc::clone(&waker),
        global_inflight: AtomicUsize::new(0),
    });

    let mut threads = Vec::with_capacity(cfg.workers + 1);
    let loop_shared = Arc::clone(&shared);
    let loop_shutdown = Arc::clone(&shutdown);
    threads.push(
        std::thread::Builder::new()
            .name("rodain-fe-loop".into())
            .spawn(move || {
                EventLoop {
                    poller,
                    listener,
                    shared: loop_shared,
                    work_tx,
                    msgs_rx,
                    shutdown: loop_shutdown,
                    conns: Vec::new(),
                    free: Vec::new(),
                    listener_armed: true,
                    accept_backoff: ACCEPT_BACKOFF_START,
                    rearm_at: None,
                }
                .run();
            })
            .expect("spawn event loop"),
    );
    for i in 0..cfg.workers {
        let shared = Arc::clone(&shared);
        let work_rx = work_rx.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("rodain-fe-worker-{i}"))
                .spawn(move || worker_loop(&shared, &work_rx))
                .expect("spawn front-end worker"),
        );
    }

    Ok(ServerHandle {
        addr,
        shutdown,
        stats,
        threads,
        waker: Some(waker),
    })
}

/// A worker: decodes frames, answers immediate ops, submits transactions
/// with a completion hook. Never touches a socket.
fn worker_loop(shared: &Shared, work: &Receiver<WorkItem>) {
    while let Ok(item) = work.recv() {
        shared.fe.read_to_dispatch.record_elapsed(item.read_at);
        let Ok(request) = Request::decode(item.frame) else {
            // Protocol violation: undo the dispatch accounting and have
            // the loop drop the connection, mirroring the threaded path.
            release_inflight(shared, &item.conn);
            shared.notify(LoopMsg::Kill {
                slot: item.slot,
                gen: item.gen,
            });
            continue;
        };
        let id = request.id;
        let deferred = request.deferred;
        let outcome = shard_redirect(&shared.backend, shared.schema, &request)
            .or_else(|| immediate_outcome(&shared.backend, &shared.fe, &request.op));
        if let Some(outcome) = outcome {
            count_outcome(&shared.stats, &outcome);
            push_reply(&item.conn, &Response { id, outcome });
            release_inflight(shared, &item.conn);
            shared.notify(LoopMsg::Dirty {
                slot: item.slot,
                gen: item.gen,
                conn: item.conn,
            });
            continue;
        }

        // Transactional op. Reserve the correlation entry first so the
        // hook has a key to fire at, and put `CommitPending` on the reply
        // queue *before* submitting: the Dirty message precedes the
        // hook's Completion in the loop's channel, so the pending frame
        // always precedes the durable frame on the wire.
        let key = shared.slab.lock().insert(PendingEntry {
            slot: item.slot,
            gen: item.gen,
            id,
            deferred,
            conn: Arc::clone(&item.conn),
            future: None,
            fired_early: false,
        });
        if deferred {
            push_reply(
                &item.conn,
                &Response {
                    id,
                    outcome: Outcome::CommitPending,
                },
            );
            shared.notify(LoopMsg::Dirty {
                slot: item.slot,
                gen: item.gen,
                conn: Arc::clone(&item.conn),
            });
        }
        let hook: CompletionHook = {
            let tx = shared.msgs_tx.clone();
            let waker = Arc::clone(&shared.waker);
            Arc::new(move || {
                let _ = tx.send(LoopMsg::Completion { key });
                waker.wake();
            })
        };
        let future = submit_request(&shared.backend, shared.schema, request, Some(hook));
        let refire = {
            let mut slab = shared.slab.lock();
            match slab.entries.get_mut(key).and_then(Option::as_mut) {
                Some(entry) => {
                    entry.future = Some(future);
                    entry.fired_early
                }
                // The loop never frees an entry whose future is still
                // unset, so the entry is always here.
                None => false,
            }
        };
        if refire {
            shared.notify(LoopMsg::Completion { key });
        }
    }
}

fn push_reply(conn: &ConnShared, response: &Response) {
    conn.replies.lock().push_back(frame_bytes(response));
}

fn release_inflight(shared: &Shared, conn: &ConnShared) {
    conn.inflight.fetch_sub(1, Ordering::AcqRel);
    shared.global_inflight.fetch_sub(1, Ordering::AcqRel);
    shared.fe.inflight.add(-1);
}

/// Why a connection is being torn down; decides whether queued frames
/// count as dropped.
#[derive(PartialEq)]
enum Close {
    /// Clean drain: nothing queued by construction.
    Drained,
    /// Peer dead or protocol violation: queued frames are lost.
    Dead,
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    shared: Arc<Shared>,
    work_tx: Sender<WorkItem>,
    msgs_rx: Receiver<LoopMsg>,
    shutdown: Arc<AtomicBool>,
    conns: Vec<Option<Conn>>,
    /// Reusable slots with the generation the next occupant gets.
    free: Vec<(u32, u32)>,
    listener_armed: bool,
    accept_backoff: Duration,
    /// When to re-add the listener to the interest set after an accept
    /// error parked it.
    rearm_at: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            let timeout = match self.rearm_at {
                Some(at) => at.saturating_duration_since(Instant::now()).min(MAX_TICK),
                None => MAX_TICK,
            };
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A broken poller must not hot-loop; messages and the
                // shutdown flag are still checked below.
                std::thread::sleep(Duration::from_millis(10));
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let tick_start = Instant::now();
            if let Some(at) = self.rearm_at {
                if tick_start >= at {
                    self.rearm_at = None;
                    if self.poller.modify(self.listener.as_raw_fd(), TOK_LISTENER, Interest::READ).is_ok() {
                        self.listener_armed = true;
                    }
                    self.do_accept();
                }
            }
            for i in 0..events.len() {
                // Copy out: handlers below need `&mut self`.
                let ev = *events.iter().nth(i).expect("event index in range");
                match ev.token {
                    TOK_LISTENER => self.do_accept(),
                    TOK_WAKER => self.shared.waker.drain(),
                    token => {
                        let slot = (token as u32).wrapping_sub(2);
                        let gen = (token >> 32) as u32;
                        if !self.conn_matches(slot, gen) {
                            continue; // stale: closed earlier this batch
                        }
                        if ev.readable || ev.error {
                            self.handle_readable(slot);
                        }
                        if ev.writable && self.conn_matches(slot, gen) {
                            self.handle_writable(slot);
                        }
                    }
                }
            }
            self.drain_msgs();
            self.shared.fe.tick.record_elapsed(tick_start);
        }
        // Shutdown: close every connection; dropping `work_tx` ends the
        // workers once the queue drains.
        for slot in 0..self.conns.len() as u32 {
            if self.conns[slot as usize].is_some() {
                self.close_conn(slot, Close::Dead);
            }
        }
    }

    fn conn_matches(&self, slot: u32, gen: u32) -> bool {
        matches!(
            self.conns.get(slot as usize),
            Some(Some(conn)) if conn.gen == gen
        )
    }

    fn do_accept(&mut self) {
        if !self.listener_armed {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_START;
                    self.add_conn(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient failures (aborted handshakes, fd
                    // exhaustion) and fatal listener errors alike: count,
                    // park the listener, and retry after an exponential
                    // backoff so neither can hot-loop the event loop.
                    self.shared.stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                    self.shared.fe.accept_errors.inc();
                    if self
                        .poller
                        .modify(self.listener.as_raw_fd(), TOK_LISTENER, Interest::NONE)
                        .is_ok()
                    {
                        self.listener_armed = false;
                    }
                    self.rearm_at = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_CAP);
                    break;
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let (slot, gen) = match self.free.pop() {
            Some(pair) => pair,
            None => {
                self.conns.push(None);
                (self.conns.len() as u32 - 1, 0)
            }
        };
        let conn = Conn {
            stream,
            gen,
            rbuf: Vec::new(),
            wqueue: VecDeque::new(),
            woffset: 0,
            shared: Arc::new(ConnShared {
                replies: Mutex::new(VecDeque::new()),
                inflight: AtomicUsize::new(0),
            }),
            interest: Interest::READ,
            paused: false,
            read_closed: false,
        };
        if self
            .poller
            .register(conn.stream.as_raw_fd(), conn_token(slot, gen), Interest::READ)
            .is_err()
        {
            self.free.push((slot, gen.wrapping_add(1)));
            return;
        }
        self.shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        self.shared.fe.connections.add(1);
        self.conns[slot as usize] = Some(conn);
    }

    fn close_conn(&mut self, slot: u32, why: Close) {
        let Some(conn) = self.conns[slot as usize].take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.free.push((slot, conn.gen.wrapping_add(1)));
        self.shared.fe.connections.add(-1);
        if why == Close::Dead {
            let dropped = conn.wqueue.len() + conn.shared.replies.lock().len();
            if dropped > 0 {
                self.count_dropped(dropped as u64);
            }
        }
        // In-flight transactions for this connection resolve later; their
        // completions find the generation gone and are accounted as
        // dropped there.
    }

    fn count_dropped(&self, n: u64) {
        self.shared.stats.replies_dropped.fetch_add(n, Ordering::Relaxed);
        self.shared.fe.replies_dropped.add(n);
    }

    fn is_paused(&self, conn: &Conn) -> bool {
        conn.shared.inflight.load(Ordering::Acquire) >= self.shared.cfg.max_inflight_per_conn
            || conn.wqueue.len() + conn.shared.replies.lock().len()
                >= self.shared.cfg.reply_queue_cap
    }

    /// Read until `WouldBlock`, EOF, or a backpressure cap trips; peel
    /// and dispatch complete frames after every chunk.
    fn handle_readable(&mut self, slot: u32) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            {
                let conn = self.conns[slot as usize].as_ref().expect("live conn");
                if conn.read_closed || self.is_paused(conn) {
                    break;
                }
            }
            let conn = self.conns[slot as usize].as_mut().expect("live conn");
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    if !self.peel_frames(slot) {
                        return; // connection killed
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(slot, Close::Dead);
                    return;
                }
            }
        }
        self.update_conn(slot);
    }

    /// Peel complete frames from `rbuf` and dispatch them, stopping at a
    /// backpressure cap (unread bytes stay in `rbuf` for the re-arm).
    /// Returns false when the connection was killed.
    fn peel_frames(&mut self, slot: u32) -> bool {
        loop {
            {
                let conn = self.conns[slot as usize].as_ref().expect("live conn");
                if self.is_paused(conn) {
                    let was_paused = conn.paused;
                    if !was_paused {
                        self.conns[slot as usize].as_mut().unwrap().paused = true;
                        self.shared
                            .stats
                            .backpressure_pauses
                            .fetch_add(1, Ordering::Relaxed);
                        self.shared.fe.backpressure_pauses.inc();
                    }
                    return true;
                }
            }
            let conn = self.conns[slot as usize].as_mut().expect("live conn");
            if conn.rbuf.len() < 4 {
                return true;
            }
            let len = u32::from_le_bytes(conn.rbuf[..4].try_into().unwrap()) as usize;
            if len > MAX_REQUEST_BYTES {
                self.close_conn(slot, Close::Dead);
                return false;
            }
            if conn.rbuf.len() < 4 + len {
                return true;
            }
            let frame = Bytes::copy_from_slice(&conn.rbuf[4..4 + len]);
            conn.rbuf.drain(..4 + len);
            self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);

            // Global admission gate: over the cap, answer `Overloaded`
            // from the 9-byte version+id header without decoding the op.
            if self.shared.global_inflight.load(Ordering::Acquire)
                >= self.shared.cfg.max_global_inflight
            {
                if frame.len() < 9 || frame[0] != PROTOCOL_VERSION {
                    self.close_conn(slot, Close::Dead);
                    return false;
                }
                let id = u64::from_le_bytes(frame[1..9].try_into().unwrap());
                let response = Response {
                    id,
                    outcome: Outcome::Overloaded,
                };
                count_outcome(&self.shared.stats, &response.outcome);
                self.shared.fe.overload_rejects.inc();
                let conn = self.conns[slot as usize].as_mut().expect("live conn");
                conn.wqueue.push_back(frame_bytes(&response));
                continue;
            }

            let conn = self.conns[slot as usize].as_mut().expect("live conn");
            conn.shared.inflight.fetch_add(1, Ordering::AcqRel);
            self.shared.global_inflight.fetch_add(1, Ordering::AcqRel);
            self.shared.fe.inflight.add(1);
            let item = WorkItem {
                slot,
                gen: conn.gen,
                conn: Arc::clone(&conn.shared),
                frame,
                read_at: Instant::now(),
            };
            let _ = self.work_tx.send(item);
        }
    }

    fn handle_writable(&mut self, slot: u32) {
        if !self.try_write(slot) {
            return;
        }
        self.update_conn(slot);
    }

    /// Flush the write queue until it empties or the socket blocks.
    /// Returns false when the connection died.
    fn try_write(&mut self, slot: u32) -> bool {
        let conn = self.conns[slot as usize].as_mut().expect("live conn");
        while let Some(front) = conn.wqueue.front() {
            match conn.stream.write(&front[conn.woffset..]) {
                Ok(n) => {
                    conn.woffset += n;
                    if conn.woffset == front.len() {
                        conn.wqueue.pop_front();
                        conn.woffset = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(slot, Close::Dead);
                    return false;
                }
            }
        }
        true
    }

    /// Reconcile a connection after any state change: move worker replies
    /// into the write queue, flush, re-evaluate backpressure (re-peeling
    /// buffered bytes on unpause), close if fully drained after EOF, and
    /// sync the poller interest set.
    fn update_conn(&mut self, slot: u32) {
        loop {
            {
                let conn = self.conns[slot as usize].as_mut().expect("live conn");
                let mut replies = conn.shared.replies.lock();
                while let Some(frame) = replies.pop_front() {
                    conn.wqueue.push_back(frame);
                }
            }
            if !self.try_write(slot) {
                return;
            }
            let conn = self.conns[slot as usize].as_ref().expect("live conn");
            let paused_now = self.is_paused(conn);
            if conn.paused && !paused_now {
                // Unparked: frames may already be buffered in rbuf, and
                // level-triggered readiness will not re-report bytes we
                // already read — peel them now. This can re-pause (or
                // kill), hence the loop.
                self.conns[slot as usize].as_mut().unwrap().paused = false;
                if !self.peel_frames(slot) {
                    return;
                }
                if self.conns[slot as usize].as_ref().unwrap().paused {
                    continue;
                }
            } else if !conn.paused && paused_now {
                self.conns[slot as usize].as_mut().unwrap().paused = true;
                self.shared
                    .stats
                    .backpressure_pauses
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.fe.backpressure_pauses.inc();
            }
            break;
        }
        let Some(Some(conn)) = self.conns.get(slot as usize) else {
            return;
        };
        if conn.read_closed
            && conn.wqueue.is_empty()
            && conn.shared.inflight.load(Ordering::Acquire) == 0
            && conn.shared.replies.lock().is_empty()
        {
            self.close_conn(slot, Close::Drained);
            return;
        }
        let want = Interest {
            read: !conn.read_closed && !conn.paused,
            write: !conn.wqueue.is_empty(),
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            let token = conn_token(slot, conn.gen);
            if self.poller.modify(fd, token, want).is_ok() {
                self.conns[slot as usize].as_mut().unwrap().interest = want;
            }
        }
    }

    fn drain_msgs(&mut self) {
        while let Ok(msg) = self.msgs_rx.try_recv() {
            match msg {
                LoopMsg::Dirty { slot, gen, conn } => {
                    if self.conn_matches(slot, gen) {
                        self.update_conn(slot);
                    } else {
                        // The connection died while the worker was
                        // answering; its frames will never be written.
                        let dropped = {
                            let mut replies = conn.replies.lock();
                            let n = replies.len();
                            replies.clear();
                            n
                        };
                        if dropped > 0 {
                            self.count_dropped(dropped as u64);
                        }
                    }
                }
                LoopMsg::Kill { slot, gen } => {
                    if self.conn_matches(slot, gen) {
                        self.close_conn(slot, Close::Dead);
                    }
                }
                LoopMsg::Completion { key } => self.handle_completion(key),
            }
        }
    }

    fn handle_completion(&mut self, key: usize) {
        let resolved = {
            let mut slab = self.shared.slab.lock();
            let Some(slot_ref) = slab.entries.get_mut(key) else {
                return;
            };
            let Some(entry) = slot_ref.as_mut() else {
                return;
            };
            match entry.future.take() {
                None => {
                    // Hook beat the worker's install; the worker re-sends
                    // Completion after installing the future.
                    entry.fired_early = true;
                    None
                }
                Some(future) => match future.try_wait() {
                    // The hook fires strictly after the outcome is
                    // delivered, so the future must be ready; leave the
                    // entry intact if it somehow is not.
                    None => {
                        entry.future = Some(future);
                        None
                    }
                    Some(result) => {
                        let entry = slot_ref.take().expect("entry present");
                        slab.free.push(key);
                        Some((entry, result))
                    }
                },
            }
        };
        let Some((entry, result)) = resolved else {
            return;
        };
        release_inflight(&self.shared, &entry.conn);
        if self.conn_matches(entry.slot, entry.gen) {
            let outcome = wire_outcome(result, entry.deferred);
            count_outcome(&self.shared.stats, &outcome);
            let response = Response {
                id: entry.id,
                outcome,
            };
            // Drain worker replies first so a deferred request's
            // CommitPending frame cannot trail its durable frame.
            {
                let conn = self.conns[entry.slot as usize].as_mut().expect("live conn");
                let mut replies = conn.shared.replies.lock();
                while let Some(frame) = replies.pop_front() {
                    conn.wqueue.push_back(frame);
                }
                conn.wqueue.push_back(frame_bytes(&response));
            }
            self.update_conn(entry.slot);
        } else {
            self.count_dropped(1);
        }
    }
}
