//! # rodain-chaos — deterministic fault-injection harness
//!
//! The paper's availability claim rests on the primary/mirror pair
//! surviving single failures without losing acknowledged commits. This
//! crate turns that claim into a checkable property: it drives a real
//! engine pair through a **reproducible schedule of faults** spanning all
//! three failure layers and verifies the durability invariants afterwards.
//!
//! * **Network** — via [`rodain_net::LossyLink`]: sever, blackhole
//!   partitions, latency with deterministic per-frame jitter, frame
//!   duplication and single-byte corruption.
//! * **Disk** — via [`rodain_log::FaultyStorage`]: transient append/fsync
//!   failures injected into the serving node's contingency log.
//! * **Node** — scripted crash/restart of the primary or mirror at commit
//!   offsets, exercising promotion ([`rodain_node::RoleMachine`]) and
//!   rejoin-by-snapshot.
//!
//! A [`FaultPlan`] is either scripted explicitly or generated from a seed
//! ([`FaultPlan::generate`]); the same seed always yields the same
//! schedule and — because every injector is deterministic and the
//! workload driver is single-threaded — the same [`ChaosVerdict`]. Failing
//! runs are reproduced with `CHAOS_SEED=<seed> cargo test -p rodain-chaos`.
//!
//! Invariants checked at quiescence (see [`invariants::Ledger`]):
//!
//! 1. **No acknowledged commit is lost**: every acked increment is visible
//!    in the serving node's store.
//! 2. **No phantom updates**: the store never exceeds the attempted work.
//! 3. **Replica convergence**: with a live mirror and a clean link, the
//!    mirror's copy equals the primary's snapshot byte for byte.
//! 4. **Exactly one node serves** at any role transition (split-brain
//!    freedom under the paper's crash-stop model).
//! 5. **Mode degradation matches the injected faults**: Mirrored →
//!    Contingency/Volatile exactly when the plan kills the mirror. The
//!    check reads both the engine API ([`rodain_db::Rodain::replication_mode`])
//!    and the observability layer's `replication_mode` gauge
//!    ([`rodain_db::Rodain::metrics`]) — the operator's dashboard and the
//!    engine must agree mid-failover (metric catalog: `METRICS.md`).
//!
//! The [`shard`] module extends the discipline to the sharding layer
//! ([`rodain_shard::ShardedRodain`]): a seeded single-shard kill must
//! cost exactly the victim's outage window and nothing on any survivor.
//!
//! The contributor workflow for reproducing and minimizing a failing seed
//! is documented in `CONTRIBUTING.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod invariants;
pub mod plan;
pub mod recovery;
pub mod shard;

pub use harness::{ChaosConfig, ChaosHarness, ChaosVerdict, FallbackPolicy};
pub use invariants::Ledger;
pub use plan::{FaultEvent, FaultPlan, PlannedFault};
pub use recovery::{scenario_seeds, SeededLog};
pub use shard::{ShardKillConfig, ShardKillHarness, ShardKillVerdict};
