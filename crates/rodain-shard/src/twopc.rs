//! Cross-shard two-phase commit layered on per-shard commit gates.
//!
//! The protocol (DESIGN.md §11) reuses the engines' existing durability
//! machinery instead of inventing a new log format:
//!
//! 1. **Prepare** — each participant shard commits a local transaction
//!    writing an *intent object* ([`ShardRouter::intent_oid`]) whose value
//!    encodes the transaction's operations for that shard. The intent goes
//!    through the shard's normal OCC validation and is shipped/flushed
//!    like any redo record, so a durable intent *is* the PREPARE record.
//! 2. **Decide** — the coordinator shard commits a *decision object*
//!    ([`ShardRouter::decision_oid`]). Its presence is the commit point;
//!    its commit gave the transaction a coordinator CSN.
//! 3. **Apply** — each participant commits a local transaction that reads
//!    its intent, applies the operations to the data objects, and rewrites
//!    the intent to an `Int` marker carrying the coordinator CSN — which
//!    stamps the decision into that shard's redo stream atomically with
//!    the data change (so replay can never half-apply a shard).
//! 4. **Clean up** — intents and the decision are deleted.
//!
//! **Presumed abort:** a coordinator crash before step 2 leaves intents
//! with no decision object; [`crate::ShardedRodain::resolve_pending`]
//! deletes them and the data objects were never touched. A crash after
//! step 2 leaves a decision object; recovery rolls the remaining intents
//! forward. [`ShardOp::Add`] is a commutative delta, so independent
//! cross-shard transfers may interleave freely without locking data
//! objects between the phases.

use crate::facade::ShardedRodain;
use crate::router::{MetaKind, ShardRouter};
use rodain_db::{CommitFuture, Rodain, TxnError, TxnOptions, TxnReceipt};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One operation inside a cross-shard transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardOp {
    /// Add `delta` to an integer object (missing objects count as 0).
    /// Deltas commute, so concurrent transfers over the same accounts
    /// never lose money regardless of apply order.
    Add {
        /// Target object.
        oid: ObjectId,
        /// Signed amount to add.
        delta: i64,
    },
    /// Overwrite an object with `value`.
    Put {
        /// Target object.
        oid: ObjectId,
        /// New value.
        value: Value,
    },
}

impl ShardOp {
    /// The object this operation targets.
    #[must_use]
    pub fn oid(&self) -> ObjectId {
        match self {
            ShardOp::Add { oid, .. } | ShardOp::Put { oid, .. } => *oid,
        }
    }
}

/// Injected coordinator-crash points for recovery tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// No injected crash (the normal path).
    #[default]
    None,
    /// Stop after every participant prepared, before the decision —
    /// recovery must presume abort.
    AfterPrepare,
    /// Stop right after the decision committed — recovery must roll
    /// forward.
    AfterDecision,
}

/// Outcome of a committed cross-shard transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrossReceipt {
    /// Group id allocated for the transaction (0 for the single-shard
    /// fast path, which needs no 2PC bookkeeping).
    pub gid: u64,
    /// The shard that carried the decision record.
    pub coordinator_shard: usize,
    /// The coordinator's commit sequence number — the transaction's
    /// global commit point.
    pub decision_csn: Csn,
    /// Participant shard count.
    pub participants: usize,
}

/// What [`crate::ShardedRodain::resolve_pending`] found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intents with a decision record: applied and cleaned.
    pub rolled_forward: u64,
    /// Intents without a decision record: presumed aborted and deleted.
    pub aborted: u64,
    /// Already-applied `Int` markers cleaned up.
    pub markers_cleaned: u64,
    /// Orphaned decision records deleted.
    pub decisions_cleaned: u64,
}

/// Encode one [`ShardOp`] as a [`Value`] — the building block of both the
/// durable intent payload and the networked cluster protocol's op lists.
#[must_use]
pub fn encode_op(op: &ShardOp) -> Value {
    match op {
        ShardOp::Add { oid, delta } => Value::Record(vec![
            Value::Int(0),
            Value::Int(oid.0 as i64),
            Value::Int(*delta),
        ]),
        ShardOp::Put { oid, value } => {
            Value::Record(vec![Value::Int(1), Value::Int(oid.0 as i64), value.clone()])
        }
    }
}

/// Inverse of [`encode_op`]; `None` on any shape mismatch.
#[must_use]
pub fn decode_op(value: &Value) -> Option<ShardOp> {
    let Value::Record(fields) = value else {
        return None;
    };
    match fields.as_slice() {
        [Value::Int(0), Value::Int(oid), Value::Int(delta)] => Some(ShardOp::Add {
            oid: ObjectId(*oid as u64),
            delta: *delta,
        }),
        [Value::Int(1), Value::Int(oid), value] => Some(ShardOp::Put {
            oid: ObjectId(*oid as u64),
            value: value.clone(),
        }),
        _ => None,
    }
}

/// Encode a participant's durable-intent payload: the transaction's group
/// id, its coordinator shard, and the operations to apply on this shard.
/// Public so a *networked* coordinator (`rodain-cluster`) can write the
/// same intents remote participants' recovery understands.
#[must_use]
pub fn encode_intent(gid: u64, coordinator: usize, ops: &[ShardOp]) -> Value {
    Value::Record(vec![
        Value::Int(gid as i64),
        Value::Int(coordinator as i64),
        Value::Record(ops.iter().map(encode_op).collect()),
    ])
}

/// Inverse of [`encode_intent`]: `(gid, coordinator_shard, ops)`.
#[must_use]
pub fn decode_intent(value: &Value) -> Option<(u64, usize, Vec<ShardOp>)> {
    let Value::Record(fields) = value else {
        return None;
    };
    let [Value::Int(gid), Value::Int(coordinator), Value::Record(ops)] = fields.as_slice() else {
        return None;
    };
    let ops = ops.iter().map(decode_op).collect::<Option<Vec<_>>>()?;
    Some((*gid as u64, *coordinator as usize, ops))
}

/// Delete `oid` (best effort — failures are resolved later by
/// [`crate::ShardedRodain::resolve_pending`]).
pub fn best_effort_delete(engine: &Rodain, oid: ObjectId) {
    let _ = engine.execute(TxnOptions::non_real_time(), move |ctx| {
        ctx.write(oid, Value::Null)?;
        Ok(None)
    });
}

/// Apply `ops` and flip the intent to an applied marker, atomically in one
/// local transaction (idempotent: a marker or missing intent is a no-op).
pub fn apply_on_shard(
    engine: &Rodain,
    opts: TxnOptions,
    intent: ObjectId,
    ops: Vec<ShardOp>,
    stamp: i64,
) -> Result<TxnReceipt, TxnError> {
    engine.execute(opts, move |ctx| {
        match ctx.read(intent)? {
            Some(Value::Record(_)) => {}
            // Already applied (marker) or already resolved: nothing to do.
            _ => return Ok(None),
        }
        for op in &ops {
            match op {
                ShardOp::Add { oid, delta } => {
                    let current = ctx.read(*oid)?.and_then(|v| v.as_int()).unwrap_or(0);
                    ctx.write(*oid, Value::Int(current + delta))?;
                }
                ShardOp::Put { oid, value } => {
                    ctx.write(*oid, value.clone())?;
                }
            }
        }
        ctx.write(intent, Value::Int(stamp))?;
        Ok(None)
    })
}

struct Participant {
    shard: usize,
    engine: Arc<Rodain>,
    ops: Vec<ShardOp>,
    intent: ObjectId,
}

pub(crate) fn execute_cross(
    db: &ShardedRodain,
    opts: TxnOptions,
    ops: Vec<ShardOp>,
    crash: CrashPoint,
) -> Result<CrossReceipt, TxnError> {
    if ops.is_empty() {
        return Err(TxnError::UserAbort("empty cross-shard transaction".into()));
    }
    if ops.iter().any(|op| ShardRouter::is_meta(op.oid())) {
        return Err(TxnError::UserAbort(
            "cross-shard operations must target data objects".into(),
        ));
    }
    let router = db.router();
    let mut groups: BTreeMap<usize, Vec<ShardOp>> = BTreeMap::new();
    for op in ops {
        groups.entry(router.route(op.oid())).or_default().push(op);
    }

    // Single-shard fast path: one engine, one ordinary transaction.
    if groups.len() == 1 {
        let (shard, ops) = groups.into_iter().next().expect("one group");
        let engine = db.engine(shard).ok_or(TxnError::Shutdown)?;
        let receipt = engine.execute(opts, move |ctx| {
            for op in &ops {
                match op {
                    ShardOp::Add { oid, delta } => {
                        let current = ctx.read(*oid)?.and_then(|v| v.as_int()).unwrap_or(0);
                        ctx.write(*oid, Value::Int(current + delta))?;
                    }
                    ShardOp::Put { oid, value } => {
                        ctx.write(*oid, value.clone())?;
                    }
                }
            }
            Ok(None)
        })?;
        return Ok(CrossReceipt {
            gid: 0,
            coordinator_shard: shard,
            decision_csn: receipt.csn,
            participants: 1,
        });
    }

    // Pin every participant's engine up front: failing before any intent
    // is written costs nothing.
    let gid = db.alloc_gid();
    let mut participants = Vec::with_capacity(groups.len());
    for (shard, ops) in groups {
        let engine = db.engine(shard).ok_or(TxnError::Shutdown)?;
        participants.push(Participant {
            shard,
            engine,
            ops,
            intent: router.intent_oid(shard, gid),
        });
    }
    let coordinator = participants[0].shard;
    let decision = router.decision_oid(coordinator, gid);

    // Phase 1: durable intents on every participant, in parallel.
    let pending: Vec<CommitFuture> = participants
        .iter()
        .map(|p| {
            let intent = p.intent;
            let payload = encode_intent(gid, coordinator, &p.ops);
            p.engine.submit(opts, move |ctx| {
                ctx.write(intent, payload.clone())?;
                Ok(None)
            })
        })
        .collect();
    let mut prepare_err = None;
    for fut in pending {
        match fut.wait() {
            Ok(_) => {}
            Err(e) => prepare_err = Some(e),
        }
    }
    if let Some(err) = prepare_err {
        // Presumed abort: no decision exists; tear the intents down.
        for p in &participants {
            best_effort_delete(&p.engine, p.intent);
        }
        return Err(err);
    }
    if crash == CrashPoint::AfterPrepare {
        return Err(TxnError::Replication(
            "injected coordinator crash after prepare".into(),
        ));
    }

    // Phase 2a: the decision record — the commit point.
    let decision_receipt = match participants[0].engine.execute(opts, move |ctx| {
        ctx.write(decision, Value::Int(gid as i64))?;
        Ok(None)
    }) {
        Ok(receipt) => receipt,
        Err(err) => {
            for p in &participants {
                best_effort_delete(&p.engine, p.intent);
            }
            return Err(err);
        }
    };
    let receipt = CrossReceipt {
        gid,
        coordinator_shard: coordinator,
        decision_csn: decision_receipt.csn,
        participants: participants.len(),
    };
    if crash == CrashPoint::AfterDecision {
        return Ok(receipt);
    }

    // Phase 2b: apply everywhere, stamping the coordinator CSN into each
    // shard's redo stream. A failure here leaves the decision in place —
    // resolve_pending finishes the roll-forward.
    let stamp = receipt.decision_csn.0 as i64;
    let applies: Vec<CommitFuture> = participants
        .iter()
        .map(|p| {
            let intent = p.intent;
            let ops = p.ops.clone();
            p.engine.submit(opts, move |ctx| {
                match ctx.read(intent)? {
                    Some(Value::Record(_)) => {}
                    _ => return Ok(None),
                }
                for op in &ops {
                    match op {
                        ShardOp::Add { oid, delta } => {
                            let current = ctx.read(*oid)?.and_then(|v| v.as_int()).unwrap_or(0);
                            ctx.write(*oid, Value::Int(current + delta))?;
                        }
                        ShardOp::Put { oid, value } => {
                            ctx.write(*oid, value.clone())?;
                        }
                    }
                }
                ctx.write(intent, Value::Int(stamp))?;
                Ok(None)
            })
        })
        .collect();
    for fut in applies {
        fut.wait()?;
    }

    // Cleanup: markers first, the decision last, so a crash mid-cleanup
    // can never orphan an unapplied intent behind a deleted decision.
    for p in &participants {
        best_effort_delete(&p.engine, p.intent);
    }
    best_effort_delete(&participants[0].engine, decision);
    Ok(receipt)
}

pub(crate) fn resolve_pending(db: &ShardedRodain) -> Result<RecoveryReport, TxnError> {
    let router = db.router();
    let mut report = RecoveryReport::default();

    // Pass 1: resolve every intent on every shard. Decisions are only
    // consulted (never deleted) here, so an intent on shard B can always
    // still see its decision on shard A.
    for shard in 0..db.shard_count() {
        let Some(engine) = db.engine(shard) else {
            continue;
        };
        let snapshot = engine.snapshot();
        for (oid, object) in &snapshot.objects {
            let Some(meta) = ShardRouter::meta_parts(*oid) else {
                continue;
            };
            if meta.kind != MetaKind::Intent {
                continue;
            }
            db.note_gid_seen(meta.gid);
            match &object.value {
                Value::Int(_) => {
                    // Data already applied; only the marker lingered.
                    best_effort_delete(&engine, *oid);
                    report.markers_cleaned += 1;
                }
                value => match decode_intent(value) {
                    Some((gid, coordinator, ops)) => {
                        let decided = db
                            .engine(coordinator)
                            .and_then(|e| e.get(router.decision_oid(coordinator, gid)))
                            .is_some();
                        if decided {
                            apply_on_shard(
                                &engine,
                                TxnOptions::non_real_time(),
                                *oid,
                                ops,
                                gid as i64,
                            )?;
                            best_effort_delete(&engine, *oid);
                            report.rolled_forward += 1;
                        } else {
                            // Presumed abort: no decision was ever made.
                            best_effort_delete(&engine, *oid);
                            report.aborted += 1;
                        }
                    }
                    None => {
                        // Unreadable intent from a torn future version:
                        // without a decodable payload it cannot commit.
                        best_effort_delete(&engine, *oid);
                        report.aborted += 1;
                    }
                },
            }
        }
    }

    // Pass 2: every intent is resolved; decisions are now garbage.
    for shard in 0..db.shard_count() {
        let Some(engine) = db.engine(shard) else {
            continue;
        };
        let snapshot = engine.snapshot();
        for (oid, _) in &snapshot.objects {
            let Some(meta) = ShardRouter::meta_parts(*oid) else {
                continue;
            };
            if meta.kind == MetaKind::Decision {
                db.note_gid_seen(meta.gid);
                best_effort_delete(&engine, *oid);
                report.decisions_cleaned += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_store::Store;

    /// Two object ids guaranteed to live on different shards of `db`.
    fn split_pair(db: &ShardedRodain) -> (ObjectId, ObjectId) {
        let a = ObjectId(1);
        let b = (2..1_000u64)
            .map(ObjectId)
            .find(|&oid| db.shard_of(oid) != db.shard_of(a))
            .expect("some id routes elsewhere");
        (a, b)
    }

    fn cluster(shards: usize) -> ShardedRodain {
        ShardedRodain::builder()
            .shards(shards)
            .workers_per_shard(2)
            .build()
            .unwrap()
    }

    fn total(db: &ShardedRodain, oids: &[ObjectId]) -> i64 {
        oids.iter()
            .map(|&oid| db.get(oid).and_then(|v| v.as_int()).unwrap_or(0))
            .sum()
    }

    /// No 2PC bookkeeping left anywhere.
    fn assert_no_meta(db: &ShardedRodain) {
        for shard in 0..db.shard_count() {
            let snapshot = db.engine(shard).unwrap().snapshot();
            for (oid, _) in &snapshot.objects {
                assert!(
                    ShardRouter::meta_parts(*oid).is_none(),
                    "leftover meta object {oid:?} on shard {shard}"
                );
            }
        }
    }

    #[test]
    fn cross_shard_transfer_moves_money_atomically() {
        let db = cluster(4);
        let (a, b) = split_pair(&db);
        db.load_initial(a, Value::Int(100));
        db.load_initial(b, Value::Int(50));
        let receipt = db
            .execute_cross(
                TxnOptions::soft_ms(5_000),
                vec![
                    ShardOp::Add { oid: a, delta: -30 },
                    ShardOp::Add { oid: b, delta: 30 },
                ],
            )
            .unwrap();
        assert_eq!(receipt.participants, 2);
        assert!(receipt.gid > 0);
        assert_eq!(db.get(a), Some(Value::Int(70)));
        assert_eq!(db.get(b), Some(Value::Int(80)));
        assert_eq!(total(&db, &[a, b]), 150);
        assert_no_meta(&db);
    }

    #[test]
    fn colocated_ops_take_the_local_fast_path() {
        let db = cluster(4);
        let a = ObjectId(1);
        let b = (2..1_000u64)
            .map(ObjectId)
            .find(|&oid| db.shard_of(oid) == db.shard_of(a))
            .unwrap();
        db.load_initial(a, Value::Int(10));
        let receipt = db
            .execute_cross(
                TxnOptions::soft_ms(5_000),
                vec![
                    ShardOp::Add { oid: a, delta: 5 },
                    ShardOp::Put {
                        oid: b,
                        value: Value::Text("x".into()),
                    },
                ],
            )
            .unwrap();
        assert_eq!(receipt.gid, 0, "single-shard group must skip 2PC");
        assert_eq!(receipt.participants, 1);
        assert_eq!(db.get(a), Some(Value::Int(15)));
        assert_eq!(db.get(b), Some(Value::Text("x".into())));
        assert_no_meta(&db);
    }

    #[test]
    fn meta_targets_and_empty_txns_are_rejected() {
        let db = cluster(2);
        assert!(matches!(
            db.execute_cross(TxnOptions::soft_ms(100), vec![]),
            Err(TxnError::UserAbort(_))
        ));
        let meta = db.router().intent_oid(0, 1);
        assert!(matches!(
            db.execute_cross(
                TxnOptions::soft_ms(100),
                vec![ShardOp::Add {
                    oid: meta,
                    delta: 1
                }]
            ),
            Err(TxnError::UserAbort(_))
        ));
    }

    #[test]
    fn crash_after_prepare_presumes_abort() {
        let db = cluster(3);
        let (a, b) = split_pair(&db);
        db.load_initial(a, Value::Int(100));
        db.load_initial(b, Value::Int(0));
        let err = db
            .execute_cross_with_crash(
                TxnOptions::soft_ms(5_000),
                vec![
                    ShardOp::Add { oid: a, delta: -40 },
                    ShardOp::Add { oid: b, delta: 40 },
                ],
                CrashPoint::AfterPrepare,
            )
            .unwrap_err();
        assert!(matches!(err, TxnError::Replication(_)));
        // Intents exist, data untouched, decision absent.
        assert_eq!(db.get(a), Some(Value::Int(100)));
        assert_eq!(db.get(b), Some(Value::Int(0)));
        let report = db.resolve_pending().unwrap();
        assert_eq!(report.aborted, 2);
        assert_eq!(report.rolled_forward, 0);
        assert_eq!(db.get(a), Some(Value::Int(100)));
        assert_eq!(db.get(b), Some(Value::Int(0)));
        assert_no_meta(&db);
    }

    #[test]
    fn crash_after_decision_rolls_forward() {
        let db = cluster(3);
        let (a, b) = split_pair(&db);
        db.load_initial(a, Value::Int(100));
        db.load_initial(b, Value::Int(0));
        let receipt = db
            .execute_cross_with_crash(
                TxnOptions::soft_ms(5_000),
                vec![
                    ShardOp::Add { oid: a, delta: -40 },
                    ShardOp::Add { oid: b, delta: 40 },
                ],
                CrashPoint::AfterDecision,
            )
            .unwrap();
        assert!(receipt.decision_csn.0 > 0);
        // Data not applied yet — the "coordinator" died after deciding.
        assert_eq!(db.get(a), Some(Value::Int(100)));
        let report = db.resolve_pending().unwrap();
        assert_eq!(report.rolled_forward, 2);
        assert_eq!(report.aborted, 0);
        assert_eq!(report.decisions_cleaned, 1);
        assert_eq!(db.get(a), Some(Value::Int(60)));
        assert_eq!(db.get(b), Some(Value::Int(40)));
        assert_no_meta(&db);
        // Resolution is idempotent.
        assert_eq!(db.resolve_pending().unwrap(), RecoveryReport::default());
    }

    #[test]
    fn recovered_cluster_presumes_abort_from_fresh_stores() {
        // Simulate a restart: the stores survive (as a mirror's copy
        // would), the facade is rebuilt around them, then resolved.
        let stores: Vec<Arc<Store>> = (0..3).map(|_| Arc::new(Store::new())).collect();
        let (a, b);
        {
            let db = ShardedRodain::builder()
                .shards(3)
                .stores(stores.clone())
                .build()
                .unwrap();
            let pair = split_pair(&db);
            a = pair.0;
            b = pair.1;
            db.load_initial(a, Value::Int(10));
            db.load_initial(b, Value::Int(20));
            let _ = db.execute_cross_with_crash(
                TxnOptions::soft_ms(5_000),
                vec![
                    ShardOp::Add { oid: a, delta: -5 },
                    ShardOp::Add { oid: b, delta: 5 },
                ],
                CrashPoint::AfterPrepare,
            );
        }
        let db = ShardedRodain::builder()
            .shards(3)
            .stores(stores)
            .build()
            .unwrap();
        let report = db.resolve_pending().unwrap();
        assert_eq!(report.aborted, 2);
        assert_eq!(total(&db, &[a, b]), 30);
        assert_eq!(db.get(a), Some(Value::Int(10)));
        assert_no_meta(&db);
        // The gid allocator moved past the recovered transaction's id.
        let receipt = db
            .execute_cross(
                TxnOptions::soft_ms(5_000),
                vec![
                    ShardOp::Add { oid: a, delta: -1 },
                    ShardOp::Add { oid: b, delta: 1 },
                ],
            )
            .unwrap();
        assert!(receipt.gid >= 2);
    }
}
