//! SATURATION (C10K): the event-driven front-end vs the
//! thread-per-connection baseline under a pipelined connection storm.
//!
//! Both series serve the same volatile engine and the same workload —
//! `Translate` requests at `DurabilityTier::Volatile`, `WINDOW` requests
//! pipelined per connection — while the connection count sweeps from a
//! few dozen to a few thousand. The client is itself event-driven: one
//! driver thread multiplexes every socket through the in-repo
//! [`rodain_net::Poller`], so client-side thread scheduling never
//! pollutes the comparison. A connection that cannot be established or
//! dies mid-run (the baseline *will* shed connections once it cannot
//! spawn two threads per socket) is counted dead and the run continues:
//! on small machines the baseline degrading is the expected result, not
//! an error.
//!
//! The regression gate (`c10k` binary, `BENCH_SATURATION.json`) holds the
//! event-driven front-end at ≥ 1.5× the baseline's committed throughput
//! at the largest measured point with ≥ 1024 connections.

use crate::experiments::SweepOptions;
use crate::report::{ms, Table};
use rodain_db::{DurabilityTier, Rodain};
use rodain_net::{raise_nofile_limit, Bytes, Events, Interest, Poller};
use rodain_server::protocol::{read_frame, write_frame};
use rodain_server::{Outcome, Request, RequestOp, Response, Server};
use rodain_workload::NumberTranslationDb;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests kept in flight per connection (well under the server's
/// default per-connection cap, so backpressure pauses stay the server's
/// choice, not the workload's).
const WINDOW: usize = 8;

/// Service numbers provisioned in the schema.
const OBJECTS: u64 = 10_000;

/// Per-request firm deadline — generous, so the sweep measures front-end
/// capacity rather than deadline misses.
const DEADLINE_MS: u32 = 10_000;

/// Wall-clock budget for establishing one series' connections. Plenty on
/// an idle multi-core box (thousands of connects per second); on a small
/// or thrashing machine it converts connect stalls into dead connections
/// so the sweep finishes in bounded time.
const CONNECT_BUDGET: Duration = Duration::from_secs(10);

/// Which front-end a series drives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FrontEnd {
    /// `Server::start` — poller loop + fixed worker pool.
    Event,
    /// `Server::start_threaded` — two threads per connection.
    Threaded,
}

impl FrontEnd {
    fn label(self) -> &'static str {
        match self {
            FrontEnd::Event => "event-driven",
            FrontEnd::Threaded => "thread-per-conn",
        }
    }
}

/// One (front-end, connection-count) measurement.
#[derive(Clone, Debug)]
pub struct FrontEndRow {
    /// Connections attempted.
    pub conns: usize,
    /// Connections still alive when the measurement window closed.
    pub live_conns: usize,
    /// `Ok` responses received inside the window.
    pub committed: u64,
    /// `Overloaded` responses (admission-gate rejections).
    pub overloaded: u64,
    /// Committed throughput (responses/s over the window).
    pub tput_tps: f64,
    /// 99th-percentile request→response latency (ns).
    pub p99_ns: u64,
}

/// One connection-count point: both series side by side.
#[derive(Clone, Debug)]
pub struct FrontEndPoint {
    /// Connections attempted.
    pub conns: usize,
    /// The event-driven front-end.
    pub event: FrontEndRow,
    /// The thread-per-connection baseline.
    pub threaded: FrontEndRow,
}

impl FrontEndPoint {
    /// Committed-throughput ratio, event-driven over baseline. The
    /// denominator is floored at 1 txn/s so a fully collapsed baseline
    /// (0 commits — it happens once it cannot spawn threads) reports a
    /// large finite ratio instead of a division blow-up.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.event.tput_tps / self.threaded.tput_tps.max(1.0)
    }
}

/// SATURATION result: the sweep plus the server-side thread budget the
/// event-driven series ran with (loop + workers — O(cores), not O(conns)).
#[derive(Clone, Debug)]
pub struct FrontEndReport {
    /// One entry per connection count.
    pub points: Vec<FrontEndPoint>,
    /// Threads the event-driven server used (1 loop + worker pool).
    pub event_threads: usize,
}

impl FrontEndReport {
    /// The gated ratio: event-driven over baseline committed throughput at
    /// the largest point with ≥ 1024 connections (falls back to the last
    /// point when the sweep never reaches 1024).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.conns >= 1024)
            .next_back()
            .or_else(|| self.points.last())
            .map_or(0.0, FrontEndPoint::speedup)
    }

    /// Render as the usual markdown table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            &format!(
                "SATURATION — event-driven front-end ({} server threads) vs \
                 thread-per-connection under pipelined connection storms \
                 ({WINDOW} requests in flight per connection)",
                self.event_threads
            ),
            &[
                "conns",
                "series",
                "live",
                "committed",
                "overloaded",
                "tput (txn/s)",
                "p99 (ms)",
                "speedup",
            ],
        );
        for point in &self.points {
            for (label, row, speedup) in [
                (
                    FrontEnd::Event.label(),
                    &point.event,
                    format!("{:.2}x", point.speedup()),
                ),
                (FrontEnd::Threaded.label(), &point.threaded, String::new()),
            ] {
                table.push(vec![
                    point.conns.to_string(),
                    label.to_string(),
                    row.live_conns.to_string(),
                    row.committed.to_string(),
                    row.overloaded.to_string(),
                    format!("{:.0}", row.tput_tps),
                    ms(row.p99_ns as f64),
                    speedup,
                ]);
            }
        }
        table
    }

    /// Hand-rolled JSON (the bench crate deliberately has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn row_json(label: &str, r: &FrontEndRow) -> String {
            format!(
                "{{\"series\": \"{label}\", \"live_conns\": {}, \"committed\": {}, \
                 \"overloaded\": {}, \"tput_tps\": {:.1}, \"p99_ns\": {}}}",
                r.live_conns, r.committed, r.overloaded, r.tput_tps, r.p99_ns
            )
        }
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"conns\": {}, \"rows\": [\n      {},\n      {}\n    ], \
                     \"speedup\": {:.3}}}",
                    p.conns,
                    row_json(FrontEnd::Event.label(), &p.event),
                    row_json(FrontEnd::Threaded.label(), &p.threaded),
                    p.speedup()
                )
            })
            .collect();
        format!(
            "{{\n  \"experiment\": \"SATURATION\",\n  \"window\": {WINDOW},\n  \
             \"event_threads\": {},\n  \"points\": [\n{}\n  ],\n  \"speedup\": {:.3}\n}}\n",
            self.event_threads,
            points.join(",\n"),
            self.speedup()
        )
    }
}

/// The C10K sweep. `--quick` (reps ≤ 3) measures two points for ~300 ms
/// each; the full run sweeps 64 → 4096 connections at ~1 s per point.
#[must_use]
pub fn front_end_saturation(opts: SweepOptions) -> FrontEndReport {
    let _ = raise_nofile_limit();
    let quick = opts.reps <= 3;
    let conn_sweep: &[usize] = if quick {
        &[64, 1024]
    } else {
        &[64, 256, 1024, 4096]
    };
    let window = Duration::from_millis(if quick { 300 } else { 1000 });

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16);

    let mut points = Vec::new();
    for &conns in conn_sweep {
        let event = run_series(FrontEnd::Event, conns, window);
        let threaded = run_series(FrontEnd::Threaded, conns, window);
        points.push(FrontEndPoint {
            conns,
            event,
            threaded,
        });
    }
    FrontEndReport {
        points,
        event_threads: workers + 1,
    }
}

/// Serve a fresh volatile engine through the chosen front-end and drive it
/// with `conns` pipelined connections for `window`.
fn run_series(front_end: FrontEnd, conns: usize, window: Duration) -> FrontEndRow {
    let db = Arc::new(Rodain::builder().workers(4).build().expect("engine"));
    let schema = NumberTranslationDb::new(OBJECTS);
    schema.populate(&db.store());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let server = Server::new(db, schema);
    let handle = match front_end {
        FrontEnd::Event => server.start(listener),
        FrontEnd::Threaded => server.start_threaded(listener),
    }
    .expect("start server");
    let row = drive(handle.addr(), conns, window);
    handle.shutdown();
    row
}

/// One multiplexed client connection.
struct ClientConn {
    stream: TcpStream,
    /// Bytes read but not yet peeled into whole response frames.
    rbuf: Vec<u8>,
    /// Encoded frames not yet accepted by the socket.
    outbox: Vec<u8>,
    /// Send timestamp per in-flight request id.
    sent_at: HashMap<u64, Instant>,
    next_id: u64,
    /// Whether the poller currently watches this socket for write.
    want_write: bool,
}

/// Aggregate counters for one series run.
#[derive(Default)]
struct DriveTotals {
    committed: u64,
    overloaded: u64,
    other: u64,
    latencies_ns: Vec<u64>,
}

/// Drive `conns` pipelined connections against `addr` for `window` from a
/// single poller thread; dead connections are dropped, not retried.
fn drive(addr: SocketAddr, conns: usize, window: Duration) -> FrontEndRow {
    let poller = Poller::new().expect("client poller");
    let mut events = Events::with_capacity(1024);
    let mut slots: Vec<Option<ClientConn>> = Vec::with_capacity(conns);

    // Connect with a per-socket timeout AND an overall budget so a wedged
    // or thrashing accept side (the baseline out of threads) degrades the
    // row instead of stretching the experiment's wall clock; sockets never
    // established are dead connections, which is itself the measurement.
    let connect_deadline = Instant::now() + CONNECT_BUDGET;
    for i in 0..conns {
        if Instant::now() >= connect_deadline {
            slots.push(None);
            continue;
        }
        match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    slots.push(None);
                    continue;
                }
                if poller
                    .register(stream.as_raw_fd(), i as u64, Interest::READ)
                    .is_err()
                {
                    slots.push(None);
                    continue;
                }
                slots.push(Some(ClientConn {
                    stream,
                    rbuf: Vec::new(),
                    outbox: Vec::new(),
                    sent_at: HashMap::new(),
                    next_id: 1,
                    want_write: false,
                }));
            }
            Err(_) => slots.push(None),
        }
    }

    let start = Instant::now();
    let deadline = start + window;
    let mut totals = DriveTotals::default();

    // Prime every live connection with a full window of requests.
    for i in 0..slots.len() {
        let mut dead = false;
        if let Some(conn) = slots[i].as_mut() {
            for _ in 0..WINDOW {
                enqueue_request(conn, i);
            }
            dead = !flush(conn, &poller, i as u64);
        }
        if dead {
            close_slot(&poller, &mut slots, i);
        }
    }

    while Instant::now() < deadline {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let timeout = remaining.min(Duration::from_millis(50));
        if poller.wait(&mut events, Some(timeout)).is_err() {
            break;
        }
        let fired: Vec<(u64, bool, bool, bool)> = events
            .iter()
            .map(|e| (e.token, e.readable, e.writable, e.error))
            .collect();
        for (token, readable, writable, error) in fired {
            let i = token as usize;
            let mut dead = false;
            if let Some(conn) = slots.get_mut(i).and_then(Option::as_mut) {
                if error {
                    dead = true;
                } else {
                    if readable {
                        dead = !pump_reads(conn, i, deadline, &mut totals);
                    }
                    if !dead && writable {
                        dead = !flush(conn, &poller, token);
                    }
                }
            }
            if dead {
                close_slot(&poller, &mut slots, i);
            }
        }
    }

    let live = slots.iter().filter(|s| s.is_some()).count();
    for i in 0..slots.len() {
        close_slot(&poller, &mut slots, i);
    }

    let secs = window.as_secs_f64();
    totals.latencies_ns.sort_unstable();
    let p99 = if totals.latencies_ns.is_empty() {
        0
    } else {
        let idx = (totals.latencies_ns.len() - 1).min(totals.latencies_ns.len() * 99 / 100);
        totals.latencies_ns[idx]
    };
    FrontEndRow {
        conns,
        live_conns: live,
        committed: totals.committed,
        overloaded: totals.overloaded,
        tput_tps: totals.committed as f64 / secs.max(f64::EPSILON),
        p99_ns: p99,
    }
}

/// Append one encoded `Translate` frame to the connection's outbox.
fn enqueue_request(conn: &mut ClientConn, slot: usize) {
    let id = conn.next_id;
    conn.next_id += 1;
    let number = (slot as u64 * 7 + id) % OBJECTS;
    let request = Request {
        id,
        deadline_ms: DEADLINE_MS,
        tier: DurabilityTier::Volatile,
        deferred: false,
        op: RequestOp::Translate { number },
    };
    let body = request.encode();
    // write_frame needs a blocking sink; build the frame into the outbox
    // instead so partial writes survive WouldBlock.
    let _ = write_frame(&mut conn.outbox, &body);
    conn.sent_at.insert(id, Instant::now());
}

/// Push outbox bytes until the socket would block; returns `false` when
/// the connection died. Keeps the poller's write interest in sync.
fn flush(conn: &mut ClientConn, poller: &Poller, token: u64) -> bool {
    while !conn.outbox.is_empty() {
        match conn.stream.write(&conn.outbox) {
            Ok(0) => return false,
            Ok(n) => {
                conn.outbox.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    let want_write = !conn.outbox.is_empty();
    if want_write != conn.want_write {
        let interest = if want_write {
            Interest::BOTH
        } else {
            Interest::READ
        };
        if poller
            .modify(conn.stream.as_raw_fd(), token, interest)
            .is_err()
        {
            return false;
        }
        conn.want_write = want_write;
    }
    true
}

/// Read until WouldBlock, peel whole frames, account outcomes, and refill
/// the pipeline window while the measurement deadline has not passed.
/// Returns `false` when the connection died (EOF or error).
fn pump_reads(
    conn: &mut ClientConn,
    slot: usize,
    deadline: Instant,
    totals: &mut DriveTotals,
) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    let mut cursor = 0usize;
    while conn.rbuf.len() - cursor >= 4 {
        let len = u32::from_le_bytes(conn.rbuf[cursor..cursor + 4].try_into().unwrap()) as usize;
        if conn.rbuf.len() - cursor - 4 < len {
            break;
        }
        let frame = Bytes::copy_from_slice(&conn.rbuf[cursor + 4..cursor + 4 + len]);
        cursor += 4 + len;
        let Ok(response) = Response::decode(frame) else {
            return false;
        };
        let now = Instant::now();
        if let Some(sent) = conn.sent_at.remove(&response.id) {
            totals
                .latencies_ns
                .push(now.saturating_duration_since(sent).as_nanos() as u64);
        }
        match response.outcome {
            Outcome::Ok(_) => totals.committed += 1,
            Outcome::Overloaded => totals.overloaded += 1,
            _ => totals.other += 1,
        }
        if now < deadline {
            enqueue_request(conn, slot);
        }
    }
    conn.rbuf.drain(..cursor);
    // New requests go out on the next writable/flush; try immediately so a
    // never-blocking socket keeps its pipeline full without waiting for a
    // write event (interest is fixed up by the caller's flush).
    while !conn.outbox.is_empty() {
        match conn.stream.write(&conn.outbox) {
            Ok(0) => return false,
            Ok(n) => {
                conn.outbox.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Deregister and drop one connection slot (idempotent).
fn close_slot(poller: &Poller, slots: &mut [Option<ClientConn>], i: usize) {
    if let Some(conn) = slots[i].take() {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
}

/// Sanity helper for tests: one blocking request over a fresh socket.
#[cfg(test)]
fn blocking_roundtrip(addr: SocketAddr) -> Outcome {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = Request::new(1, DEADLINE_MS, RequestOp::Translate { number: 1 });
    write_frame(&mut stream, &request.encode()).expect("write");
    let frame = read_frame(&mut stream).expect("read");
    Response::decode(frame).expect("decode").outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_rows_and_json() {
        let row = run_series(FrontEnd::Event, 8, Duration::from_millis(120));
        assert_eq!(row.conns, 8);
        assert!(row.live_conns > 0, "all connections died");
        assert!(row.committed > 0, "no commits observed");
        let report = FrontEndReport {
            points: vec![FrontEndPoint {
                conns: 8,
                event: row.clone(),
                threaded: row,
            }],
            event_threads: 2,
        };
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"SATURATION\""));
        assert!(json.contains("\"speedup\""));
        assert!((report.speedup() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn both_front_ends_answer_a_blocking_probe() {
        for fe in [FrontEnd::Event, FrontEnd::Threaded] {
            let db = Arc::new(Rodain::builder().workers(2).build().unwrap());
            let schema = NumberTranslationDb::new(64);
            schema.populate(&db.store());
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let server = Server::new(db, schema);
            let handle = match fe {
                FrontEnd::Event => server.start(listener),
                FrontEnd::Threaded => server.start_threaded(listener),
            }
            .unwrap();
            match blocking_roundtrip(handle.addr()) {
                Outcome::Ok(_) => {}
                other => panic!("{} gave {other:?}", fe.label()),
            }
            handle.shutdown();
        }
    }
}
