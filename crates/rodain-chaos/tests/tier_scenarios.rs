//! Durability-tier chaos scenario: a `CommitFuture` that resolves at
//! `MirrorAcked` is a promise — every such commit must be present on the
//! mirror when it takes over, and commits acknowledged *after* the link
//! dies must say so honestly (`acked_tier` = `Volatile` under the
//! `ContinueVolatile` loss policy).

use rodain_db::{DurabilityTier, MirrorLossPolicy, Rodain, TxnOptions};
use rodain_net::{InProcTransport, LossyLink};
use rodain_node::{MirrorConfig, MirrorExit, MirrorNode};
use rodain_store::{ObjectId, Store, Value};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn mirror_acked_futures_survive_takeover_and_degraded_futures_are_honest() {
    let db = Rodain::builder()
        .workers(2)
        .commit_gate_timeout(Duration::from_millis(250))
        .build()
        .unwrap();
    for i in 0..100u64 {
        db.load_initial(ObjectId(i * 3), Value::Int(0));
    }

    let (primary_side, mirror_side) = InProcTransport::pair();
    let (lossy, control) = LossyLink::new(primary_side);
    let mirror_store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        Arc::clone(&mirror_store),
        Arc::new(mirror_side),
        None,
        MirrorConfig {
            poll_interval: Duration::from_millis(1),
            heartbeat_interval: Duration::from_millis(10),
            peer_timeout: Duration::from_millis(100),
            suspect_rounds: 3,
            snapshot_dir: None,
            takeover_workers: 2,
        },
    );
    let mirror_thread = std::thread::spawn(move || {
        mirror.join().expect("mirror join");
        mirror.run()
    });
    db.attach_mirror(Arc::new(lossy), MirrorLossPolicy::ContinueVolatile)
        .unwrap();

    // Phase 1 — pipeline a burst of MirrorAcked submits. Each future must
    // resolve at the requested tier, and together they define the durable
    // set the mirror owes us after takeover.
    let futures: Vec<_> = (0..30u64)
        .map(|i| {
            db.submit(
                TxnOptions::soft_ms(10_000).with_durability(DurabilityTier::MirrorAcked),
                move |ctx| {
                    ctx.write(ObjectId(i * 3), Value::Int(i as i64 + 1))?;
                    Ok(None)
                },
            )
        })
        .collect();
    let mut durable = Vec::new();
    for (i, fut) in futures.into_iter().enumerate() {
        let receipt = fut.wait().expect("mirror-acked commit");
        assert_eq!(
            receipt.acked_tier,
            DurabilityTier::MirrorAcked,
            "commit {i} resolved below the requested tier with a live mirror"
        );
        durable.push((ObjectId(i as u64 * 3), Value::Int(i as i64 + 1)));
    }

    // Phase 2 — kill the link mid-stream and keep submitting. The futures
    // must still resolve (ContinueVolatile keeps serving), but none may
    // claim MirrorAcked: the receipt reports Volatile.
    control.sever();
    let degraded: Vec<_> = (30..60u64)
        .map(|i| {
            db.submit(
                TxnOptions::soft_ms(10_000).with_durability(DurabilityTier::MirrorAcked),
                move |ctx| {
                    ctx.write(ObjectId(i * 3), Value::Int(i as i64 + 1))?;
                    Ok(None)
                },
            )
        })
        .collect();
    for (i, fut) in degraded.into_iter().enumerate() {
        let receipt = fut.wait().expect("degraded commit");
        assert_eq!(
            receipt.acked_tier,
            DurabilityTier::Volatile,
            "post-sever commit {i} claimed durability the dead link cannot provide"
        );
    }

    // The mirror notices the silent peer and takes over.
    let (exit, _report) = mirror_thread.join().unwrap();
    assert_eq!(exit, MirrorExit::PrimaryFailed);

    // The takeover invariant: every commit whose future resolved
    // MirrorAcked is present in the promoted store. (Volatile-resolved
    // commits carry no such promise.)
    for (oid, expected) in durable {
        assert_eq!(
            mirror_store.read(oid).map(|(v, _)| v),
            Some(expected),
            "mirror lost a commit whose future resolved MirrorAcked ({oid:?})"
        );
    }
}
