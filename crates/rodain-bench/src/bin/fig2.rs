//! Regenerate Fig 2: normal mode (Primary + Mirror) vs transient mode
//! (single node) with true log writes.
//!
//! `cargo run -p rodain-bench --release --bin fig2 [-- --panel a|b|all] [--quick]`

use rodain_bench::experiments::{fig2_panel_a, fig2_panel_b, SweepOptions};

fn main() {
    let opts = SweepOptions::from_args();
    let panel = std::env::args()
        .skip_while(|a| a != "--panel")
        .nth(1)
        .unwrap_or_else(|| "all".into());
    if panel == "a" || panel == "all" {
        let table = fig2_panel_a(opts);
        table.print();
        println!("csv: {:?}\n", table.write_csv("fig2a").unwrap());
    }
    if panel == "b" || panel == "all" {
        let table = fig2_panel_b(opts);
        table.print();
        println!("csv: {:?}", table.write_csv("fig2b").unwrap());
    }
}
