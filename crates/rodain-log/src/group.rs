//! Group commit: batching synchronous log flushes.
//!
//! In Contingency mode (a node running alone) "the Log writer must store
//! the logs directly to the disk" before the transaction may commit — the
//! disk write is back on the critical path. [`GroupCommitLog`] amortizes it:
//! all commit groups waiting while one flush is in flight are appended
//! together and made durable by a single flush, so a 10 ms disk services
//! many transactions per rotation instead of one. The mirror node uses the
//! same component in asynchronous mode ("the disk updates are made after
//! the transaction is committed").

use crate::record::LogRecord;
use crate::storage::StorageBackend;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rodain_obs::{Histogram, Recorder};
use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Monotone group-commit statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Flush groups executed.
    pub groups: u64,
    /// Records appended.
    pub records: u64,
    /// Synchronous commit requests served.
    pub sync_commits: u64,
    /// Largest number of requests coalesced into one flush.
    pub max_batch: u64,
}

enum Request {
    /// Append and make durable before replying.
    Commit {
        records: Vec<LogRecord>,
        done: Sender<io::Result<()>>,
    },
    /// Checkpoint support: delete closed segments fully below a CSN,
    /// keeping the newest `retain` otherwise-deletable ones.
    Truncate {
        upto: rodain_occ::Csn,
        retain: usize,
        done: Sender<io::Result<usize>>,
    },
    /// Query the underlying storage's statistics (the checkpointer's
    /// log-size trigger reads `on_disk_bytes` through this).
    StorageStats {
        done: Sender<crate::storage::StorageStats>,
    },
    /// Append without waiting (mirror's asynchronous disk writer).
    Append {
        records: Vec<LogRecord>,
    },
    /// Make everything appended so far durable.
    Flush {
        done: Sender<io::Result<()>>,
    },
    Shutdown,
}

/// A dedicated log-writer thread with group commit.
pub struct GroupCommitLog {
    tx: Sender<Request>,
    handle: Option<JoinHandle<Box<dyn StorageBackend>>>,
    stats: Arc<Mutex<GroupCommitStats>>,
}

impl GroupCommitLog {
    /// Spawn the writer thread over `storage` — usually a
    /// [`crate::LogStorage`], but any [`StorageBackend`] works (the chaos
    /// harness injects a fault-wrapping backend here). At most `max_batch`
    /// requests are coalesced per flush.
    #[must_use]
    pub fn spawn(storage: impl StorageBackend + 'static, max_batch: usize) -> Self {
        Self::spawn_dyn(Box::new(storage), max_batch)
    }

    /// [`GroupCommitLog::spawn`] for an already-boxed backend.
    #[must_use]
    pub fn spawn_dyn(storage: Box<dyn StorageBackend>, max_batch: usize) -> Self {
        Self::spawn_dyn_observed(storage, max_batch, &Recorder::new())
    }

    /// [`GroupCommitLog::spawn`] publishing `log_flush_ns` (wall time of
    /// each storage flush — the Contingency-mode fsync) and
    /// `log_batch_records` (records coalesced per flush group) on `rec`.
    #[must_use]
    pub fn spawn_observed(
        storage: impl StorageBackend + 'static,
        max_batch: usize,
        rec: &Recorder,
    ) -> Self {
        Self::spawn_dyn_observed(Box::new(storage), max_batch, rec)
    }

    /// [`GroupCommitLog::spawn_observed`] for an already-boxed backend.
    #[must_use]
    pub fn spawn_dyn_observed(
        storage: Box<dyn StorageBackend>,
        max_batch: usize,
        rec: &Recorder,
    ) -> Self {
        let (tx, rx) = unbounded::<Request>();
        let stats = Arc::new(Mutex::new(GroupCommitStats::default()));
        let stats_thread = Arc::clone(&stats);
        let obs = WriterObs {
            flush_ns: rec.histogram("log_flush_ns"),
            batch_records: rec.histogram("log_batch_records"),
        };
        let handle = std::thread::Builder::new()
            .name("rodain-log-writer".into())
            .spawn(move || writer_loop(storage, rx, stats_thread, max_batch.max(1), obs))
            .expect("spawn log writer");
        GroupCommitLog {
            tx,
            handle: Some(handle),
            stats,
        }
    }

    /// Append `records` and block until they are durable. This is the
    /// commit path of Contingency mode.
    pub fn commit_sync(&self, records: Vec<LogRecord>) -> io::Result<()> {
        let (done_tx, done_rx) = bounded(1);
        self.tx
            .send(Request::Commit {
                records,
                done: done_tx,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))?;
        done_rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))?
    }

    /// Append `records` without waiting for durability (mirror mode: the
    /// commit was already acknowledged; the disk write happens after).
    pub fn append_async(&self, records: Vec<LogRecord>) -> io::Result<()> {
        self.tx
            .send(Request::Append { records })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))
    }

    /// Block until everything appended so far is durable. A surviving
    /// mirror calls this when the primary dies, closing the window in which
    /// buffered logs could be lost to a second failure.
    pub fn flush_sync(&self) -> io::Result<()> {
        let (done_tx, done_rx) = bounded(1);
        self.tx
            .send(Request::Flush { done: done_tx })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))?;
        done_rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))?
    }

    /// Checkpoint support: delete closed segments whose commits all lie
    /// below `upto`; returns how many were removed.
    pub fn truncate_before(&self, upto: rodain_occ::Csn) -> io::Result<usize> {
        self.truncate_before_retaining(upto, 0)
    }

    /// [`GroupCommitLog::truncate_before`], keeping the newest `retain`
    /// otherwise-deletable segments as a safety margin.
    pub fn truncate_before_retaining(
        &self,
        upto: rodain_occ::Csn,
        retain: usize,
    ) -> io::Result<usize> {
        let (done_tx, done_rx) = bounded(1);
        self.tx
            .send(Request::Truncate {
                upto,
                retain,
                done: done_tx,
            })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))?;
        done_rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))?
    }

    /// Statistics of the underlying storage backend (notably
    /// `on_disk_bytes`, the checkpointer's log-size trigger input).
    pub fn storage_stats(&self) -> io::Result<crate::storage::StorageStats> {
        let (done_tx, done_rx) = bounded(1);
        self.tx
            .send(Request::StorageStats { done: done_tx })
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))?;
        done_rx
            .recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "log writer gone"))
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> GroupCommitStats {
        *self.stats.lock()
    }

    /// Stop the writer thread and recover the underlying storage.
    pub fn shutdown(mut self) -> Box<dyn StorageBackend> {
        let _ = self.tx.send(Request::Shutdown);
        self.handle
            .take()
            .expect("shutdown called once")
            .join()
            .expect("log writer panicked")
    }
}

impl Drop for GroupCommitLog {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.tx.send(Request::Shutdown);
            let _ = handle.join();
        }
    }
}

/// Writer-thread metrics (see `METRICS.md`).
struct WriterObs {
    flush_ns: Histogram,
    batch_records: Histogram,
}

fn writer_loop(
    mut storage: Box<dyn StorageBackend>,
    rx: Receiver<Request>,
    stats: Arc<Mutex<GroupCommitStats>>,
    max_batch: usize,
    obs: WriterObs,
) -> Box<dyn StorageBackend> {
    loop {
        let Ok(first) = rx.recv() else {
            return storage;
        };
        let mut batch = vec![first];
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(req) => batch.push(req),
                Err(_) => break,
            }
        }

        let mut waiters: Vec<Sender<io::Result<()>>> = Vec::new();
        let mut appended = 0u64;
        let mut sync_commits = 0u64;
        let mut need_flush = false;
        let mut shutdown = false;
        let mut append_err: Option<io::ErrorKind> = None;

        for req in batch.drain(..) {
            match req {
                Request::Commit { records, done } => {
                    sync_commits += 1;
                    need_flush = true;
                    match storage.append_batch(&records) {
                        Ok(()) => appended += records.len() as u64,
                        Err(err) => append_err = Some(err.kind()),
                    }
                    waiters.push(done);
                }
                Request::Append { records } => match storage.append_batch(&records) {
                    Ok(()) => appended += records.len() as u64,
                    Err(err) => append_err = Some(err.kind()),
                },
                Request::Flush { done } => {
                    need_flush = true;
                    waiters.push(done);
                }
                Request::Truncate { upto, retain, done } => {
                    let _ = done.send(storage.truncate_before_retaining(upto, retain));
                }
                Request::StorageStats { done } => {
                    let _ = done.send(storage.stats());
                }
                Request::Shutdown => shutdown = true,
            }
        }

        let flush_result = if need_flush || shutdown {
            let started = Instant::now();
            let result = storage.flush();
            obs.flush_ns.record_elapsed(started);
            result
        } else {
            Ok(())
        };
        if appended > 0 {
            obs.batch_records.record(appended);
        }
        let result_kind = append_err.or(flush_result.err().map(|e| e.kind()));

        // Fold into the shared stats BEFORE acking the waiters: a caller
        // returning from commit_sync must see its own commit counted.
        {
            let mut s = stats.lock();
            s.groups += 1;
            s.records += appended;
            s.sync_commits += sync_commits;
            s.max_batch = s.max_batch.max(sync_commits);
        }

        for w in waiters {
            let reply = match result_kind {
                None => Ok(()),
                Some(kind) => Err(io::Error::new(kind, "log write failed")),
            };
            let _ = w.send(reply);
        }

        if shutdown {
            return storage;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Lsn, RecordKind};
    use crate::storage::{LogStorage, LogStorageConfig};
    use rodain_occ::Csn;
    use rodain_store::{Ts, TxnId};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-group-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn commit_rec(lsn: u64, csn: u64) -> LogRecord {
        LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(lsn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn),
                n_writes: 0,
            },
        }
    }

    fn open(dir: &PathBuf) -> LogStorage {
        LogStorage::open(LogStorageConfig {
            fsync: false,
            ..LogStorageConfig::new(dir)
        })
        .unwrap()
    }

    #[test]
    fn sync_commit_is_durable_on_return() {
        let dir = tmpdir("sync");
        let group = GroupCommitLog::spawn(open(&dir), 8);
        group.commit_sync(vec![commit_rec(1, 1)]).unwrap();
        group.commit_sync(vec![commit_rec(2, 2)]).unwrap();
        let mut storage = group.shutdown();
        let got: Vec<_> = storage.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_commits_coalesce() {
        let dir = tmpdir("coalesce");
        let group = std::sync::Arc::new(GroupCommitLog::spawn(open(&dir), 64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let g = std::sync::Arc::clone(&group);
            handles.push(std::thread::spawn(move || {
                for i in 0..20u64 {
                    g.commit_sync(vec![commit_rec(t * 100 + i, t * 100 + i)])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = group.stats();
        assert_eq!(stats.sync_commits, 160);
        assert_eq!(stats.records, 160);
        // With 8 writers racing, at least one flush served several commits.
        assert!(
            stats.groups <= stats.sync_commits,
            "groups {} > commits {}",
            stats.groups,
            stats.sync_commits
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_appends_flush_on_demand() {
        let dir = tmpdir("async");
        let group = GroupCommitLog::spawn(open(&dir), 8);
        for i in 1..=5u64 {
            group.append_async(vec![commit_rec(i, i)]).unwrap();
        }
        group.flush_sync().unwrap();
        assert_eq!(group.stats().records, 5);
        let mut storage = group.shutdown();
        let got: Vec<_> = storage.iter().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observed_writer_records_flush_latency() {
        let dir = tmpdir("observed");
        let rec = Recorder::new();
        let group = GroupCommitLog::spawn_observed(open(&dir), 8, &rec);
        group.commit_sync(vec![commit_rec(1, 1)]).unwrap();
        group.commit_sync(vec![commit_rec(2, 2)]).unwrap();
        let snap = rec.snapshot();
        let flush = snap.histogram("log_flush_ns").unwrap();
        assert!(flush.count >= 2, "flushes: {}", flush.count);
        let batch = snap.histogram("log_batch_records").unwrap();
        assert!(batch.count >= 1);
        drop(group);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let dir = tmpdir("drop");
        {
            let group = GroupCommitLog::spawn(open(&dir), 8);
            group.append_async(vec![commit_rec(1, 1)]).unwrap();
            // Dropped without explicit shutdown.
        }
        let mut iter = LogStorage::scan_dir(&dir).unwrap();
        // The shutdown path flushes buffered records.
        assert!(iter.next().unwrap().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
