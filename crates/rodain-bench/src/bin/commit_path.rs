//! COMMITPATH: commit-latency breakdown per durability path, including the
//! group-commit ablation of the single-node disk configuration.
//!
//! `cargo run -p rodain-bench --release --bin commit_path [-- --quick]`

use rodain_bench::experiments::{commit_path, SweepOptions};

fn main() {
    let table = commit_path(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("commit_path").unwrap());
}
