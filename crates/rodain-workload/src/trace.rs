//! Transaction traces and the "off-line generated test file" format.

use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// The two transaction types of the paper's workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnKind {
    /// "The read-only service provision transaction reads a few objects
    /// and commits."
    ReadOnly,
    /// "The write transaction is an update service provision transaction
    /// that reads a few objects, updates them and then commits."
    Update,
    /// A non-real-time maintenance transaction (extension; reads a few
    /// objects without a deadline).
    NonRealTime,
}

impl TxnKind {
    fn tag(self) -> char {
        match self {
            TxnKind::ReadOnly => 'R',
            TxnKind::Update => 'U',
            TxnKind::NonRealTime => 'N',
        }
    }

    fn from_tag(c: &str) -> Option<TxnKind> {
        match c {
            "R" => Some(TxnKind::ReadOnly),
            "U" => Some(TxnKind::Update),
            "N" => Some(TxnKind::NonRealTime),
            _ => None,
        }
    }
}

/// One load description: a transaction arrival.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnRequest {
    /// Dense sequence number within the session (also seeds value
    /// generation so re-execution is deterministic).
    pub seq: u64,
    /// Arrival time relative to session start (ns).
    pub arrival_ns: u64,
    /// Transaction type.
    pub kind: TxnKind,
    /// Relative firm deadline (ns); `None` for non-real-time.
    pub relative_deadline_ns: Option<u64>,
    /// Object numbers read (update transactions update all of them).
    pub objects: Vec<u64>,
}

impl TxnRequest {
    /// Whether this request updates the objects it reads.
    #[must_use]
    pub fn is_update(&self) -> bool {
        self.kind == TxnKind::Update
    }
}

/// Errors reading a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based number.
    Parse(usize, String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse(line, what) => write!(f, "trace line {line}: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A full test session: the ordered list of transaction arrivals.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Arrivals, ordered by `arrival_ns`.
    pub requests: Vec<TxnRequest>,
}

impl Trace {
    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Observed update fraction.
    #[must_use]
    pub fn update_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let updates = self.requests.iter().filter(|r| r.is_update()).count();
        updates as f64 / self.requests.len() as f64
    }

    /// Session duration: last arrival offset (ns).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.requests.last().map(|r| r.arrival_ns).unwrap_or(0)
    }

    /// Write the "off-line generated test file": one line per arrival,
    /// `seq arrival_ns kind deadline_ns objects,comma,separated`.
    pub fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        writeln!(out, "# rodain-trace v1")?;
        for r in &self.requests {
            let deadline = r
                .relative_deadline_ns
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into());
            let objects: Vec<String> = r.objects.iter().map(u64::to_string).collect();
            writeln!(
                out,
                "{} {} {} {} {}",
                r.seq,
                r.arrival_ns,
                r.kind.tag(),
                deadline,
                objects.join(",")
            )?;
        }
        Ok(())
    }

    /// Read a trace written by [`Trace::write_to`].
    pub fn read_from(input: impl BufRead) -> Result<Trace, TraceError> {
        let mut requests = Vec::new();
        for (lineno, line) in input.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut field = |what: &str| {
                parts
                    .next()
                    .ok_or_else(|| TraceError::Parse(lineno + 1, format!("missing {what}")))
            };
            let seq: u64 = field("seq")?
                .parse()
                .map_err(|_| TraceError::Parse(lineno + 1, "bad seq".into()))?;
            let arrival_ns: u64 = field("arrival")?
                .parse()
                .map_err(|_| TraceError::Parse(lineno + 1, "bad arrival".into()))?;
            let kind = TxnKind::from_tag(field("kind")?)
                .ok_or_else(|| TraceError::Parse(lineno + 1, "bad kind".into()))?;
            let deadline_raw = field("deadline")?;
            let relative_deadline_ns = if deadline_raw == "-" {
                None
            } else {
                Some(
                    deadline_raw
                        .parse()
                        .map_err(|_| TraceError::Parse(lineno + 1, "bad deadline".into()))?,
                )
            };
            let objects_raw = field("objects")?;
            let objects: Result<Vec<u64>, _> =
                objects_raw.split(',').map(str::parse::<u64>).collect();
            let objects =
                objects.map_err(|_| TraceError::Parse(lineno + 1, "bad object list".into()))?;
            requests.push(TxnRequest {
                seq,
                arrival_ns,
                kind,
                relative_deadline_ns,
                objects,
            });
        }
        Ok(Trace { requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            requests: vec![
                TxnRequest {
                    seq: 0,
                    arrival_ns: 0,
                    kind: TxnKind::ReadOnly,
                    relative_deadline_ns: Some(50_000_000),
                    objects: vec![5, 17, 230],
                },
                TxnRequest {
                    seq: 1,
                    arrival_ns: 4_217_000,
                    kind: TxnKind::Update,
                    relative_deadline_ns: Some(150_000_000),
                    objects: vec![99, 12],
                },
                TxnRequest {
                    seq: 2,
                    arrival_ns: 9_000_000,
                    kind: TxnKind::NonRealTime,
                    relative_deadline_ns: None,
                    objects: vec![1],
                },
            ],
        }
    }

    #[test]
    fn file_roundtrip() {
        let trace = sample();
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let got = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(got, trace);
    }

    #[test]
    fn stats() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!((t.update_fraction() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.duration_ns(), 9_000_000);
        assert!(!t.is_empty());
        assert_eq!(Trace::default().duration_ns(), 0);
        assert_eq!(Trace::default().update_fraction(), 0.0);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0 0 R 1000 1,2\n# mid comment\n1 5 U 2000 3\n";
        let got = Trace::read_from(text.as_bytes()).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got.requests[1].objects, vec![3]);
    }

    #[test]
    fn malformed_lines_are_reported_with_number() {
        let text = "0 0 R 1000 1,2\nnot a line\n";
        match Trace::read_from(text.as_bytes()) {
            Err(TraceError::Parse(2, _)) => {}
            other => panic!("{other:?}"),
        }
        let text = "0 0 X 1000 1\n";
        assert!(matches!(
            Trace::read_from(text.as_bytes()),
            Err(TraceError::Parse(1, _))
        ));
    }
}
