//! # rodain-shard — hash-partitioned multi-engine cluster
//!
//! The paper's Primary/Mirror pair bounds throughput at **one commit gate
//! and one log stream**. This crate scales the protocol horizontally by
//! partitioning the [`rodain_store::ObjectId`] space across N independent
//! [`rodain_db::Rodain`] engines — each shard keeps its own OCC
//! controller, EDF scheduler, redo-log stream and (optionally) its own
//! mirror, so availability stays exactly the paper's protocol, replicated
//! N times: a shard's primary failing is handled by *that shard's* mirror
//! while the other shards never notice.
//!
//! * [`ShardRouter`] — stateless hash partitioning of data objects, plus a
//!   reserved metadata namespace (high bit set) whose object ids embed
//!   their home shard, so 2PC bookkeeping objects route deterministically.
//! * [`ShardedRodain`] — the facade. Single-shard transactions take the
//!   fast path: route, delegate, zero added overhead. Cross-shard
//!   transactions go through a two-phase commit layered on the existing
//!   per-shard commit gates: *prepare* writes a durable intent record
//!   through each participant's normal commit path (per-shard OCC
//!   validation + the intent shipped like any redo record), *commit* is a
//!   decision record on the coordinator shard whose CSN is then stamped
//!   into every participant's redo stream by the apply phase.
//! * [`ShardMap`] — the versioned (epoch-numbered) shard → owning-node
//!   assignment multi-node placement routes by: clients cache a map,
//!   nodes answer `WrongShard { epoch }` for shards they don't own, and
//!   every ownership change (a migration cutover) bumps the epoch
//!   exactly once (see `DESIGN.md` §16).
//! * Presumed abort: a crash between prepare and decision leaves intents
//!   with no decision record; [`ShardedRodain::resolve_pending`] replays
//!   them to abort. A crash after the decision rolls forward.
//!
//! See `DESIGN.md` §11 for the full protocol walk-through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod facade;
mod map;
mod router;
mod twopc;

pub use facade::{ShardedRodain, ShardedRodainBuilder};
pub use map::{ShardMap, ShardOwner};
pub use router::{MetaKind, MetaOid, ShardRouter, MAX_SHARDS, META_BIT};
pub use twopc::{
    apply_on_shard, best_effort_delete, decode_intent, decode_op, encode_intent, encode_op,
    CrashPoint, CrossReceipt, RecoveryReport, ShardOp,
};
