//! Bounded ring-buffer event tracer for commit/failover timelines.

use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// One traced event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Monotone sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Nanoseconds since the tracer was created.
    pub at_ns: u64,
    /// Static event kind, e.g. `"mode-change"` or `"takeover"`.
    pub kind: &'static str,
    /// Free-form detail line.
    pub detail: String,
}

struct Inner {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
}

/// A bounded timeline of notable events (mode changes, failovers, gate
/// timeouts). The buffer holds the most recent `capacity` events; older
/// ones are silently dropped, so emitting is O(1) and the tracer can live
/// for the whole process without growing.
#[derive(Clone)]
pub struct EventTrace {
    epoch: Instant,
    capacity: usize,
    inner: Arc<Mutex<Inner>>,
}

impl EventTrace {
    /// A tracer retaining at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> EventTrace {
        EventTrace {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Arc::new(Mutex::new(Inner {
                events: VecDeque::new(),
                next_seq: 0,
            })),
        }
    }

    /// Append an event, evicting the oldest if the buffer is full.
    pub fn emit(&self, kind: &'static str, detail: impl Into<String>) {
        let at_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock().expect("trace lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(TraceEvent {
            seq,
            at_ns,
            kind,
            detail: detail.into(),
        });
    }

    /// Copy of the retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("trace lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Total events ever emitted (including evicted ones).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.inner.lock().expect("trace lock").next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let trace = EventTrace::new(3);
        for i in 0..5 {
            trace.emit("tick", format!("event {i}"));
        }
        let events = trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(trace.emitted(), 5);
    }

    #[test]
    fn timestamps_are_monotone() {
        let trace = EventTrace::new(8);
        trace.emit("a", "");
        trace.emit("b", "");
        let events = trace.events();
        assert!(events[0].at_ns <= events[1].at_ns);
    }
}
