//! Heartbeat-based failure detection (the Watchdog of Fig. 1).

/// Verdict on the peer's health.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DetectorVerdict {
    /// Heard from the peer within the timeout.
    Alive,
    /// One timeout elapsed; the peer may just be slow.
    Suspect,
    /// `suspect_rounds` timeouts elapsed without any traffic: declare the
    /// peer dead and trigger failover.
    Dead,
}

/// A simple timeout-based failure detector.
///
/// Time is injected (nanoseconds), so the same detector runs under the
/// real clock and under simulated time. *Any* received message counts as a
/// heartbeat — in normal operation the log/ack stream itself keeps the
/// detector fed, and explicit [`crate::Message::Heartbeat`]s only flow when
/// the system is idle.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    timeout_ns: u64,
    suspect_rounds: u32,
    last_heard: Option<u64>,
    started_at: u64,
    heard_count: u64,
}

impl FailureDetector {
    /// A detector that declares death after `suspect_rounds` silent
    /// timeouts of `timeout_ns` each, measured from `now`.
    #[must_use]
    pub fn new(now: u64, timeout_ns: u64, suspect_rounds: u32) -> Self {
        FailureDetector {
            timeout_ns: timeout_ns.max(1),
            suspect_rounds: suspect_rounds.max(1),
            last_heard: None,
            started_at: now,
            heard_count: 0,
        }
    }

    /// Record traffic from the peer at `now`.
    pub fn heard(&mut self, now: u64) {
        self.heard_count += 1;
        match self.last_heard {
            Some(t) if t >= now => {}
            _ => self.last_heard = Some(now),
        }
    }

    /// Messages heard over the detector lifetime.
    #[must_use]
    pub fn heard_count(&self) -> u64 {
        self.heard_count
    }

    /// Evaluate the peer's health at `now`.
    #[must_use]
    pub fn check(&self, now: u64) -> DetectorVerdict {
        let reference = self.last_heard.unwrap_or(self.started_at);
        let silent = now.saturating_sub(reference);
        if silent < self.timeout_ns {
            DetectorVerdict::Alive
        } else if silent
            < self
                .timeout_ns
                .saturating_mul(u64::from(self.suspect_rounds))
        {
            DetectorVerdict::Suspect
        } else {
            DetectorVerdict::Dead
        }
    }

    /// Nanoseconds of silence so far.
    #[must_use]
    pub fn silence(&self, now: u64) -> u64 {
        now.saturating_sub(self.last_heard.unwrap_or(self.started_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alive_while_traffic_flows() {
        let mut d = FailureDetector::new(0, 100, 3);
        for t in (0..1000).step_by(50) {
            d.heard(t);
            assert_eq!(d.check(t + 49), DetectorVerdict::Alive);
        }
        assert_eq!(d.heard_count(), 20);
    }

    #[test]
    fn silence_escalates_to_dead() {
        let mut d = FailureDetector::new(0, 100, 3);
        d.heard(10);
        assert_eq!(d.check(100), DetectorVerdict::Alive);
        assert_eq!(d.check(110), DetectorVerdict::Suspect);
        assert_eq!(d.check(250), DetectorVerdict::Suspect);
        assert_eq!(d.check(310), DetectorVerdict::Dead);
        assert_eq!(d.silence(310), 300);
    }

    #[test]
    fn never_heard_counts_from_start() {
        let d = FailureDetector::new(1_000, 100, 2);
        assert_eq!(d.check(1_050), DetectorVerdict::Alive);
        assert_eq!(d.check(1_150), DetectorVerdict::Suspect);
        assert_eq!(d.check(1_200), DetectorVerdict::Dead);
    }

    #[test]
    fn late_heard_does_not_rewind() {
        let mut d = FailureDetector::new(0, 100, 2);
        d.heard(500);
        d.heard(300); // out-of-order clock reading
        assert_eq!(d.silence(600), 100);
    }

    #[test]
    fn huge_timeout_does_not_wrap() {
        // timeout_ns * suspect_rounds would overflow u64 and wrap to a tiny
        // product, instantly declaring the peer dead; the multiplication
        // must saturate instead.
        let d = FailureDetector::new(0, u64::MAX / 2, 3);
        assert_eq!(d.check(u64::MAX / 2 - 1), DetectorVerdict::Alive);
        assert_eq!(d.check(u64::MAX / 2 + 10), DetectorVerdict::Suspect);
        assert_eq!(d.check(u64::MAX - 1), DetectorVerdict::Suspect);
    }

    #[test]
    fn recovery_after_suspect() {
        let mut d = FailureDetector::new(0, 100, 3);
        d.heard(0);
        assert_eq!(d.check(150), DetectorVerdict::Suspect);
        d.heard(160);
        assert_eq!(d.check(200), DetectorVerdict::Alive);
    }
}
