//! A two-node RODAIN cluster over real TCP sockets.
//!
//! Run both roles in one command (loopback):
//! `cargo run --example tcp_cluster`
//!
//! Or run a real two-process cluster:
//! terminal 1: `cargo run --example tcp_cluster -- mirror 127.0.0.1:7070`
//! terminal 2: `cargo run --example tcp_cluster -- primary 127.0.0.1:7070`

use rodain::db::{MirrorLossPolicy, Rodain, TxnOptions};
use rodain::log::{GroupCommitLog, LogStorage, LogStorageConfig};
use rodain::net::TcpTransport;
use rodain::node::{MirrorConfig, MirrorNode};
use rodain::store::Store;
use rodain::{ObjectId, Value};
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn run_mirror(listen: &str) {
    let listener = TcpListener::bind(listen).expect("bind");
    println!("[mirror] waiting for the primary on {listen}");
    let transport = TcpTransport::accept(&listener).expect("accept");
    println!("[mirror] primary connected from {}", transport.peer_addr());

    // The mirror spools the reordered log to disk — the "secondary media"
    // protecting against simultaneous failure of both nodes.
    let dir = std::env::temp_dir().join(format!("rodain-tcp-mirror-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let storage = LogStorage::open(LogStorageConfig::new(&dir)).expect("log dir");
    let spool = GroupCommitLog::spawn(storage, 64);

    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        store.clone(),
        Arc::new(transport),
        Some(spool),
        MirrorConfig::default(),
    );
    let next = mirror.join().expect("join");
    println!(
        "[mirror] state transfer done ({} objects); live from {next:?}",
        store.len()
    );
    let (exit, report) = mirror.run();
    println!(
        "[mirror] exited: {exit:?}; applied {} txns, acked {} commits, log in {}",
        report.txns_applied,
        report.acks_sent,
        dir.display()
    );
}

fn run_primary(connect: &str, txns: u64) {
    println!("[primary] connecting to mirror at {connect}");
    let transport = loop {
        match TcpTransport::connect(connect) {
            Ok(t) => break t,
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    };
    let db = Rodain::builder()
        .workers(4)
        .mirror(Arc::new(transport), MirrorLossPolicy::ContinueVolatile)
        .build()
        .expect("start primary");
    for i in 0..1_000u64 {
        db.load_initial(ObjectId(i), Value::Int(0));
    }
    let started = std::time::Instant::now();
    for i in 0..txns {
        db.execute(TxnOptions::firm_ms(200), move |ctx| {
            let oid = ObjectId(i % 1_000);
            let v = ctx.read(oid)?.unwrap().as_int().unwrap();
            ctx.write(oid, Value::Int(v + 1))?;
            Ok(None)
        })
        .expect("commit over TCP");
    }
    let elapsed = started.elapsed();
    println!(
        "[primary] {txns} replicated commits in {elapsed:?} \
         ({:.0} tps, every commit acknowledged by the mirror)",
        txns as f64 / elapsed.as_secs_f64()
    );
    println!("[primary] acks: {:?}", db.mirror_acks());
    println!("[primary] stats: {:#?}", db.stats());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("mirror") => run_mirror(args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7070")),
        Some("primary") => run_primary(
            args.get(2).map(String::as_str).unwrap_or("127.0.0.1:7070"),
            2_000,
        ),
        _ => {
            // Demo mode: both roles over loopback in one process.
            println!(
                "demo mode: primary + mirror over 127.0.0.1 (pass 'mirror'/'primary' to split)"
            );
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mirror_thread = std::thread::spawn(move || {
                let transport = TcpTransport::accept(&listener).unwrap();
                let store = Arc::new(Store::new());
                let mut mirror = MirrorNode::new(
                    store.clone(),
                    Arc::new(transport),
                    None,
                    MirrorConfig::default(),
                );
                mirror.join().unwrap();
                let shutdown = mirror.shutdown_handle();
                let applied = mirror.applied_csn_handle();
                let runner = std::thread::spawn(move || mirror.run());
                (store, applied, shutdown, runner)
            });
            let transport = TcpTransport::connect(addr).unwrap();
            let db = Rodain::builder()
                .workers(4)
                .mirror(Arc::new(transport), MirrorLossPolicy::ContinueVolatile)
                .build()
                .unwrap();
            let (store, applied, shutdown, runner) = mirror_thread.join().unwrap();
            for i in 0..2_000u64 {
                db.execute(TxnOptions::firm_ms(200), move |ctx| {
                    ctx.write(ObjectId(i % 100), Value::Int(i as i64))?;
                    Ok(None)
                })
                .unwrap();
            }
            while applied.load(Ordering::Acquire) < 2_000 {
                std::thread::sleep(Duration::from_millis(1));
            }
            println!(
                "2000 commits replicated over TCP; mirror holds {} objects, \
                 object 42 = {:?}",
                store.len(),
                store.read(ObjectId(42)).unwrap().0
            );
            shutdown.store(true, Ordering::Release);
            runner.join().unwrap();
        }
    }
}
