//! RESERVATION: ablation of the non-real-time execution-time reservation
//! in the modified EDF scheduler.
//!
//! `cargo run -p rodain-bench --release --bin reservation [-- --quick]`

use rodain_bench::experiments::{reservation, SweepOptions};

fn main() {
    let table = reservation(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("reservation").unwrap());
}
