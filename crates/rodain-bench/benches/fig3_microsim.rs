//! Criterion wrapper around the Fig 3 (disk-off) configurations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rodain_sim::{run_session, DiskMode, SimConfig};
use rodain_workload::WorkloadSpec;

fn bench_fig3_sessions(c: &mut Criterion) {
    let spec = WorkloadSpec {
        count: 1_000,
        arrival_rate_tps: 250.0,
        write_fraction: 0.2,
        ..WorkloadSpec::default()
    };
    let mut group = c.benchmark_group("fig3-session-1000txn");
    group.sample_size(10);
    for (name, cfg) in [
        ("no-logs", SimConfig::no_logs()),
        ("1-node-nodisk", SimConfig::single_node(DiskMode::Off)),
        ("2-node-nodisk", SimConfig::two_node(DiskMode::Off)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(run_session(cfg, &spec)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_sessions);
criterion_main!(benches);
