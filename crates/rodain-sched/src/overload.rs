//! Overload management and admission control.

use crate::class::{Nanos, TaskMeta, TxnClass};
use rodain_store::TxnId;
use std::collections::{HashMap, VecDeque};

/// Configuration of the overload manager (paper §2):
///
/// > "To handle occasional system overload situations the scheduler can
/// > limit the number of active transactions in the database system. We use
/// > the number of transactions that have missed their deadlines within the
/// > observation period as the indication of the current system load level."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Maximum concurrently active transactions under no overload
    /// (the prototype used 50).
    pub base_limit: usize,
    /// Floor the limit can shrink to under sustained overload.
    pub min_limit: usize,
    /// Observation period for deadline misses (ns).
    pub window: Nanos,
    /// Misses within the window at which the limit starts shrinking.
    pub miss_tolerance: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            base_limit: 50,
            min_limit: 10,
            window: 1_000_000_000, // 1 s observation period
            miss_tolerance: 10,
        }
    }
}

/// Admission decision for an arriving transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admit; capacity is available.
    Accept,
    /// Reject the arriving transaction (it is lower priority than every
    /// active one, or non-real-time at the limit).
    Reject,
    /// Admit the arriving transaction and abort the named active one
    /// (the arrival is more urgent than the least urgent active txn).
    AcceptEvicting(TxnId),
}

/// Bookkeeping of the currently active (admitted, not yet finished)
/// transactions, enough to pick eviction victims.
#[derive(Debug, Default)]
pub struct ActiveSet {
    tasks: HashMap<TxnId, TaskMeta>,
}

impl ActiveSet {
    /// Create an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of active transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no transaction is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Register an admitted transaction.
    pub fn insert(&mut self, task: TaskMeta) {
        self.tasks.insert(task.txn, task);
    }

    /// Unregister a finished/aborted transaction.
    pub fn remove(&mut self, txn: TxnId) -> Option<TaskMeta> {
        self.tasks.remove(&txn)
    }

    /// Whether `txn` is active.
    #[must_use]
    pub fn contains(&self, txn: TxnId) -> bool {
        self.tasks.contains_key(&txn)
    }

    /// The least urgent active transaction (largest EDF key; non-real-time
    /// first, then the latest deadline; ties broken towards the newest
    /// arrival). `None` when empty.
    #[must_use]
    pub fn least_urgent(&self) -> Option<&TaskMeta> {
        self.tasks
            .values()
            .max_by_key(|t| (t.priority_key(), t.arrival))
    }

    /// Iterate active tasks.
    pub fn iter(&self) -> impl Iterator<Item = &TaskMeta> {
        self.tasks.values()
    }

    /// Drop everything (failover).
    pub fn clear(&mut self) {
        self.tasks.clear();
    }
}

/// The overload manager: sliding-window deadline-miss tracking plus the
/// active-transaction limit with priority-aware admission.
#[derive(Debug)]
pub struct OverloadManager {
    config: OverloadConfig,
    misses: VecDeque<Nanos>,
    rejected: u64,
    evicted: u64,
}

impl OverloadManager {
    /// Create a manager.
    #[must_use]
    pub fn new(config: OverloadConfig) -> Self {
        OverloadManager {
            config,
            misses: VecDeque::new(),
            rejected: 0,
            evicted: 0,
        }
    }

    /// Record a missed deadline at `now`.
    pub fn record_miss(&mut self, now: Nanos) {
        self.misses.push_back(now);
        self.prune(now);
    }

    fn prune(&mut self, now: Nanos) {
        let horizon = now.saturating_sub(self.config.window);
        while let Some(&t) = self.misses.front() {
            if t >= horizon {
                break;
            }
            self.misses.pop_front();
        }
    }

    /// Misses within the observation window ending at `now`.
    #[must_use]
    pub fn misses_in_window(&mut self, now: Nanos) -> usize {
        self.prune(now);
        self.misses.len()
    }

    /// The current active-transaction limit: shrinks linearly from
    /// `base_limit` toward `min_limit` as misses within the window climb
    /// past the tolerance.
    #[must_use]
    pub fn current_limit(&mut self, now: Nanos) -> usize {
        let misses = self.misses_in_window(now);
        let cfg = self.config;
        if misses <= cfg.miss_tolerance {
            return cfg.base_limit;
        }
        // Each miss beyond the tolerance sheds one slot, floored.
        let excess = misses - cfg.miss_tolerance;
        cfg.base_limit.saturating_sub(excess).max(cfg.min_limit)
    }

    /// Decide admission of `arriving` at `now` given the `active` set.
    ///
    /// Below the limit every transaction is admitted. At the limit the
    /// paper aborts "an arriving lower priority transaction"; symmetrically,
    /// an arriving transaction *more urgent* than the least urgent active
    /// one evicts it.
    pub fn admit(&mut self, now: Nanos, arriving: &TaskMeta, active: &ActiveSet) -> Admission {
        let limit = self.current_limit(now);
        if active.len() < limit {
            return Admission::Accept;
        }
        if arriving.class == TxnClass::NonRealTime {
            self.rejected += 1;
            return Admission::Reject;
        }
        match active.least_urgent() {
            Some(victim) if arriving.priority_key() < victim.priority_key() => {
                self.evicted += 1;
                Admission::AcceptEvicting(victim.txn)
            }
            _ => {
                self.rejected += 1;
                Admission::Reject
            }
        }
    }

    /// Transactions rejected at admission so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Active transactions evicted in favour of more urgent arrivals.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> OverloadConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(base: usize) -> OverloadManager {
        OverloadManager::new(OverloadConfig {
            base_limit: base,
            min_limit: 2,
            window: 1_000,
            miss_tolerance: 2,
        })
    }

    #[test]
    fn admits_below_limit() {
        let mut m = mgr(2);
        let active = ActiveSet::new();
        let t = TaskMeta::firm(TxnId(1), 0, 100, 10);
        assert_eq!(m.admit(0, &t, &active), Admission::Accept);
    }

    #[test]
    fn rejects_non_rt_at_limit() {
        let mut m = mgr(1);
        let mut active = ActiveSet::new();
        active.insert(TaskMeta::firm(TxnId(1), 0, 100, 10));
        let t = TaskMeta::non_real_time(TxnId(2), 0, 10);
        assert_eq!(m.admit(0, &t, &active), Admission::Reject);
        assert_eq!(m.rejected(), 1);
    }

    #[test]
    fn rejects_less_urgent_rt_at_limit() {
        let mut m = mgr(1);
        let mut active = ActiveSet::new();
        active.insert(TaskMeta::firm(TxnId(1), 0, 100, 10));
        // Arriving with a later deadline: lower priority → rejected.
        let t = TaskMeta::firm(TxnId(2), 0, 500, 10);
        assert_eq!(m.admit(0, &t, &active), Admission::Reject);
    }

    #[test]
    fn urgent_arrival_evicts_least_urgent() {
        let mut m = mgr(2);
        let mut active = ActiveSet::new();
        active.insert(TaskMeta::firm(TxnId(1), 0, 100, 10));
        active.insert(TaskMeta::firm(TxnId(2), 0, 900, 10));
        let t = TaskMeta::firm(TxnId(3), 0, 50, 10);
        assert_eq!(m.admit(0, &t, &active), Admission::AcceptEvicting(TxnId(2)));
        assert_eq!(m.evicted(), 1);
    }

    #[test]
    fn non_rt_active_is_first_eviction_victim() {
        let mut m = mgr(2);
        let mut active = ActiveSet::new();
        active.insert(TaskMeta::firm(TxnId(1), 0, 100, 10));
        active.insert(TaskMeta::non_real_time(TxnId(2), 0, 10));
        let t = TaskMeta::firm(TxnId(3), 0, 50_000, 10);
        assert_eq!(m.admit(0, &t, &active), Admission::AcceptEvicting(TxnId(2)));
    }

    #[test]
    fn limit_shrinks_with_misses_and_recovers() {
        let mut m = mgr(10);
        assert_eq!(m.current_limit(0), 10);
        for i in 0..6 {
            m.record_miss(i);
        }
        // 6 misses, tolerance 2 → shed 4 slots.
        assert_eq!(m.current_limit(10), 6);
        // Window slides: misses age out, limit recovers.
        assert_eq!(m.current_limit(5_000), 10);
    }

    #[test]
    fn limit_never_drops_below_min() {
        let mut m = mgr(4);
        for i in 0..100 {
            m.record_miss(i);
        }
        assert_eq!(m.current_limit(100), 2);
    }

    #[test]
    fn misses_in_window_slides() {
        let mut m = mgr(4);
        m.record_miss(0);
        m.record_miss(500);
        assert_eq!(m.misses_in_window(600), 2);
        assert_eq!(m.misses_in_window(1_400), 1);
        assert_eq!(m.misses_in_window(1_600), 0);
    }

    #[test]
    fn active_set_basics() {
        let mut a = ActiveSet::new();
        assert!(a.is_empty());
        a.insert(TaskMeta::firm(TxnId(1), 0, 100, 10));
        a.insert(TaskMeta::soft(TxnId(2), 5, 100, 10));
        assert_eq!(a.len(), 2);
        assert!(a.contains(TxnId(1)));
        // Least urgent: equal deadline keys 100 vs 105 → txn 2 (arrival 5).
        assert_eq!(a.least_urgent().unwrap().txn, TxnId(2));
        assert!(a.remove(TxnId(2)).is_some());
        assert!(a.remove(TxnId(2)).is_none());
        a.clear();
        assert!(a.is_empty());
    }
}
