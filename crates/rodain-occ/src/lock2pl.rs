//! 2PL-HP — two-phase locking with high-priority conflict resolution.

use crate::traits::{
    AccessDecision, CcPriority, CcStats, ConcurrencyController, Csn, Protocol, RestartReason,
    ValidationOutcome,
};
use parking_lot::Mutex;
use rodain_store::{ObjectId, Store, Ts, TxnId, Workspace};
use std::collections::{HashMap, HashSet};

use crate::active::CLOCK_STRIDE;

/// Two-phase locking with High Priority conflict resolution (Abbott &
/// Garcia-Molina's classic real-time locking baseline).
///
/// Accesses take shared (read) or exclusive (write) locks. On conflict the
/// *priorities* decide: a more urgent requester **wounds** every less urgent
/// holder (they are doomed and will restart), then waits for the lock to be
/// released; a less urgent requester simply waits. Ties break on
/// transaction id, giving a strict total order, so every wait edge points
/// from less urgent to more urgent and no deadlock can form.
///
/// Blocking is cooperative: the controller returns
/// [`AccessDecision::Block`] and the engine retries the access after the
/// holder finishes (the engine's wait loop also re-checks whether the
/// requester itself has been wounded in the meantime).
pub struct TwoPlHp {
    state: Mutex<LockState>,
}

#[derive(Default)]
struct LockEntry {
    exclusive: Option<TxnId>,
    shared: HashSet<TxnId>,
}

impl LockEntry {
    fn is_free(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }
}

struct TxnLocks {
    priority: CcPriority,
    held: HashSet<ObjectId>,
    doomed: Option<RestartReason>,
}

struct LockState {
    locks: HashMap<ObjectId, LockEntry>,
    txns: HashMap<TxnId, TxnLocks>,
    clock: u64,
    next_csn: Csn,
    stats: CcStats,
}

/// Strict priority order: smaller `CcPriority` is more urgent; ties break
/// on transaction id so the order is total (deadlock freedom).
fn more_urgent(a: (CcPriority, TxnId), b: (CcPriority, TxnId)) -> bool {
    (a.0, a.1) < (b.0, b.1)
}

impl TwoPlHp {
    /// Create a controller.
    #[must_use]
    pub fn new() -> Self {
        TwoPlHp {
            state: Mutex::new(LockState {
                locks: HashMap::new(),
                txns: HashMap::new(),
                clock: 0,
                next_csn: Csn::FIRST,
                stats: CcStats::default(),
            }),
        }
    }

    /// Try to take a lock; wound less urgent conflicting holders.
    fn acquire(&self, txn: TxnId, oid: ObjectId, exclusive: bool) -> AccessDecision {
        let mut st = self.state.lock();
        let me_prio = match st.txns.get(&txn) {
            Some(t) => {
                if let Some(reason) = t.doomed {
                    return AccessDecision::Restart(reason);
                }
                t.priority
            }
            None => return AccessDecision::Proceed, // unregistered: engine bug-tolerance
        };
        let me = (me_prio, txn);

        // Collect conflicting holders.
        let entry = st.locks.entry(oid).or_default();
        let mut conflicts: Vec<TxnId> = Vec::new();
        if let Some(x) = entry.exclusive {
            if x != txn {
                conflicts.push(x);
            }
        }
        if exclusive {
            conflicts.extend(entry.shared.iter().copied().filter(|t| *t != txn));
        }

        if conflicts.is_empty() {
            if exclusive {
                entry.shared.remove(&txn);
                entry.exclusive = Some(txn);
            } else if entry.exclusive != Some(txn) {
                entry.shared.insert(txn);
            }
            if let Some(t) = st.txns.get_mut(&txn) {
                t.held.insert(oid);
            }
            return AccessDecision::Proceed;
        }

        // High Priority: wound every less urgent holder; block on the most
        // urgent conflicting holder either way.
        let mut block_on = conflicts[0];
        let mut block_prio = st
            .txns
            .get(&conflicts[0])
            .map(|t| t.priority)
            .unwrap_or(CcPriority::LOWEST);
        let mut wounded = Vec::new();
        for holder in &conflicts {
            let hp = st
                .txns
                .get(holder)
                .map(|t| t.priority)
                .unwrap_or(CcPriority::LOWEST);
            if more_urgent(me, (hp, *holder)) {
                wounded.push(*holder);
            }
            if more_urgent((hp, *holder), (block_prio, block_on)) {
                block_on = *holder;
                block_prio = hp;
            }
        }
        for w in wounded {
            if let Some(t) = st.txns.get_mut(&w) {
                if t.doomed.is_none() {
                    t.doomed = Some(RestartReason::Wounded);
                    st.stats.victim_restarts += 1;
                }
            }
        }
        st.stats.blocks += 1;
        AccessDecision::Block { holder: block_on }
    }

    fn release_all(st: &mut LockState, txn: TxnId) {
        if let Some(t) = st.txns.remove(&txn) {
            for oid in t.held {
                if let Some(entry) = st.locks.get_mut(&oid) {
                    if entry.exclusive == Some(txn) {
                        entry.exclusive = None;
                    }
                    entry.shared.remove(&txn);
                    if entry.is_free() {
                        st.locks.remove(&oid);
                    }
                }
            }
        }
    }
}

impl Default for TwoPlHp {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrencyController for TwoPlHp {
    fn protocol(&self) -> Protocol {
        Protocol::TwoPlHp
    }

    fn begin(&self, txn: TxnId, priority: CcPriority) {
        let mut st = self.state.lock();
        // A restart re-begins the same id: release stale locks first.
        Self::release_all(&mut st, txn);
        st.txns.insert(
            txn,
            TxnLocks {
                priority,
                held: HashSet::new(),
                doomed: None,
            },
        );
    }

    fn on_read(&self, txn: TxnId, oid: ObjectId, _observed_wts: Ts) -> AccessDecision {
        self.acquire(txn, oid, false)
    }

    fn on_write(&self, txn: TxnId, oid: ObjectId, _store: &Store) -> AccessDecision {
        self.acquire(txn, oid, true)
    }

    fn doomed(&self, txn: TxnId) -> Option<RestartReason> {
        self.state.lock().txns.get(&txn).and_then(|t| t.doomed)
    }

    fn validate(&self, ws: &Workspace, store: &Store) -> ValidationOutcome {
        let txn = ws.txn();
        let mut st = self.state.lock();
        if let Some(t) = st.txns.get(&txn) {
            if let Some(reason) = t.doomed {
                Self::release_all(&mut st, txn);
                st.stats.self_restarts += 1;
                return ValidationOutcome::Restart(reason);
            }
        }
        // Under strict 2PL validation always succeeds: every access held
        // its lock until now.
        st.clock += CLOCK_STRIDE;
        let ser_ts = Ts(st.clock);
        ws.install_into(store, ser_ts);
        let csn = st.next_csn;
        st.next_csn = csn.next();
        st.stats.commits += 1;
        Self::release_all(&mut st, txn);
        ValidationOutcome::Commit {
            ser_ts,
            csn,
            victims: Vec::new(),
        }
    }

    fn remove(&self, txn: TxnId) {
        let mut st = self.state.lock();
        Self::release_all(&mut st, txn);
    }

    fn stats(&self) -> CcStats {
        self.state.lock().stats
    }

    fn active_count(&self) -> usize {
        self.state.lock().txns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_store::Value;

    fn store_with(n: u64) -> Store {
        let s = Store::new();
        for i in 0..n {
            s.load_initial(ObjectId(i), Value::Int(i as i64));
        }
        s
    }

    #[test]
    fn shared_locks_are_compatible() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(10));
        cc.begin(TxnId(2), CcPriority(20));
        assert_eq!(
            cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO),
            AccessDecision::Proceed
        );
        assert_eq!(
            cc.on_read(TxnId(2), ObjectId(0), Ts::ZERO),
            AccessDecision::Proceed
        );
        let _ = store;
    }

    #[test]
    fn urgent_writer_wounds_reader() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(100)); // less urgent reader
        cc.begin(TxnId(2), CcPriority(1)); // urgent writer
        assert_eq!(
            cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO),
            AccessDecision::Proceed
        );
        match cc.on_write(TxnId(2), ObjectId(0), &store) {
            AccessDecision::Block { holder } => assert_eq!(holder, TxnId(1)),
            other => panic!("{other:?}"),
        }
        assert_eq!(cc.doomed(TxnId(1)), Some(RestartReason::Wounded));
        // Reader aborts, writer retries and proceeds.
        cc.remove(TxnId(1));
        assert_eq!(
            cc.on_write(TxnId(2), ObjectId(0), &store),
            AccessDecision::Proceed
        );
    }

    #[test]
    fn less_urgent_writer_waits_without_wounding() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(1)); // urgent reader
        cc.begin(TxnId(2), CcPriority(100)); // lazy writer
        assert_eq!(
            cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO),
            AccessDecision::Proceed
        );
        match cc.on_write(TxnId(2), ObjectId(0), &store) {
            AccessDecision::Block { holder } => assert_eq!(holder, TxnId(1)),
            other => panic!("{other:?}"),
        }
        assert_eq!(cc.doomed(TxnId(1)), None);
        assert_eq!(cc.stats().blocks, 1);
    }

    #[test]
    fn lock_upgrade_when_sole_reader() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(1));
        assert_eq!(
            cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO),
            AccessDecision::Proceed
        );
        assert_eq!(
            cc.on_write(TxnId(1), ObjectId(0), &store),
            AccessDecision::Proceed
        );
        // Re-reading own exclusively locked object is fine.
        assert_eq!(
            cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO),
            AccessDecision::Proceed
        );
    }

    #[test]
    fn ties_break_on_txn_id() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(5));
        cc.begin(TxnId(2), CcPriority(5));
        assert_eq!(
            cc.on_write(TxnId(2), ObjectId(0), &store),
            AccessDecision::Proceed
        );
        // Equal priority, smaller id: txn 1 is "more urgent" and wounds 2.
        match cc.on_write(TxnId(1), ObjectId(0), &store) {
            AccessDecision::Block { holder } => assert_eq!(holder, TxnId(2)),
            other => panic!("{other:?}"),
        }
        assert_eq!(cc.doomed(TxnId(2)), Some(RestartReason::Wounded));
    }

    #[test]
    fn commit_installs_and_releases() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(1));
        let mut ws = Workspace::new(TxnId(1));
        let v = ws.read(&store, ObjectId(0)).unwrap();
        cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO);
        ws.write(ObjectId(0), Value::Int(v.as_int().unwrap() + 1));
        cc.on_write(TxnId(1), ObjectId(0), &store);
        assert!(cc.validate(&ws, &store).is_commit());
        assert_eq!(store.read(ObjectId(0)).unwrap().0, Value::Int(1));
        assert_eq!(cc.active_count(), 0);
        // Locks are gone: another txn can write immediately.
        cc.begin(TxnId(2), CcPriority(1));
        assert_eq!(
            cc.on_write(TxnId(2), ObjectId(0), &store),
            AccessDecision::Proceed
        );
    }

    #[test]
    fn wounded_txn_restarts_at_validation() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(100));
        cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO);
        cc.begin(TxnId(2), CcPriority(1));
        let _ = cc.on_write(TxnId(2), ObjectId(0), &store);
        // Txn 1 was wounded; its validation must restart it.
        let ws = Workspace::new(TxnId(1));
        match cc.validate(&ws, &store) {
            ValidationOutcome::Restart(RestartReason::Wounded) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rebegin_after_restart_clears_locks_and_doom() {
        let cc = TwoPlHp::new();
        let store = store_with(2);
        cc.begin(TxnId(1), CcPriority(100));
        cc.on_read(TxnId(1), ObjectId(0), Ts::ZERO);
        cc.begin(TxnId(2), CcPriority(1));
        let _ = cc.on_write(TxnId(2), ObjectId(0), &store);
        assert_eq!(cc.doomed(TxnId(1)), Some(RestartReason::Wounded));
        // Restart: begin again with the same id.
        cc.begin(TxnId(1), CcPriority(100));
        assert_eq!(cc.doomed(TxnId(1)), None);
        // Txn 2 now holds the exclusive lock (acquired after 1's release).
        assert_eq!(
            cc.on_write(TxnId(2), ObjectId(0), &store),
            AccessDecision::Proceed
        );
    }
}
