//! Soak test: sustained mixed load with repeated mirror failovers and
//! rejoins, checking state equivalence at every epoch.
//!
//! Two scales of the same scenario:
//! * `soak_smoke` — seconds-scale, runs in the normal test suite.
//! * `sustained_load_with_repeated_failovers` — the full ~20 s soak,
//!   ignored by default; run with
//!   `cargo test --test soak -- --ignored --nocapture`

use rodain::db::{MirrorLossPolicy, Rodain, TxnOptions};
use rodain::net::InProcTransport;
use rodain::node::{MirrorConfig, MirrorNode};
use rodain::store::Store;
use rodain::{ObjectId, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast_mirror_config() -> MirrorConfig {
    MirrorConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        peer_timeout: Duration::from_millis(100),
        suspect_rounds: 3,
        snapshot_dir: None,
        takeover_workers: 2,
    }
}

struct MirrorHarness {
    store: Arc<Store>,
    applied: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<(rodain::node::MirrorExit, rodain::node::MirrorReport)>,
}

fn spawn_mirror(db: &Rodain) -> MirrorHarness {
    let (primary_side, mirror_side) = InProcTransport::pair();
    let store = Arc::new(Store::new());
    let mut mirror = MirrorNode::new(
        store.clone(),
        Arc::new(mirror_side),
        None,
        fast_mirror_config(),
    );
    let applied = mirror.applied_csn_handle();
    let shutdown = mirror.shutdown_handle();
    let thread = std::thread::spawn(move || {
        mirror.join().expect("mirror join");
        mirror.run()
    });
    db.attach_mirror(Arc::new(primary_side), MirrorLossPolicy::ContinueVolatile)
        .expect("attach mirror");
    MirrorHarness {
        store,
        applied,
        shutdown,
        thread,
    }
}

struct SoakScale {
    objects: u64,
    epochs: usize,
    writers: usize,
    /// How long each epoch's mirror tracks live traffic before the
    /// stall probe.
    epoch_live: Duration,
    /// Window over which the mirror's applied counter must advance.
    epoch_probe: Duration,
}

fn soak(scale: &SoakScale) {
    let objects = scale.objects;
    let db = Arc::new(
        Rodain::builder()
            .workers(scale.writers + 1)
            .build()
            .unwrap(),
    );
    for i in 0..objects {
        db.load_initial(ObjectId(i), Value::Int(0));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for t in 0..scale.writers as u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut committed = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                i += 1;
                let oid = ObjectId((t * 7_919 + i * 13) % objects);
                let result = db.execute(
                    TxnOptions::soft_ms(5_000).with_est_cost(Duration::from_micros(20)),
                    move |ctx| {
                        let v = ctx.read(oid)?.unwrap().as_int().unwrap();
                        ctx.write(oid, Value::Int(v + 1))?;
                        Ok(None)
                    },
                );
                if result.is_ok() {
                    committed += 1;
                }
            }
            committed
        }));
    }

    // Epochs: attach a fresh mirror, let it track live traffic, verify it
    // catches up, kill it, repeat — all while the writers hammer away.
    for epoch in 0..scale.epochs {
        let mirror = spawn_mirror(&db);
        let epoch_start = Instant::now();
        std::thread::sleep(scale.epoch_live);
        // The mirror must be advancing.
        let before = mirror.applied.load(Ordering::Acquire);
        std::thread::sleep(scale.epoch_probe);
        let after = mirror.applied.load(Ordering::Acquire);
        assert!(
            after > before,
            "epoch {epoch}: mirror stalled ({before} → {after})"
        );
        // Kill the mirror; the primary must keep serving.
        mirror.shutdown.store(true, Ordering::Release);
        let (_, report) = mirror.thread.join().unwrap();
        assert!(report.txns_applied > 0, "epoch {epoch}: nothing applied");
        println!(
            "epoch {epoch}: mirror applied {} txns in {:?}",
            report.txns_applied,
            epoch_start.elapsed()
        );
    }

    // Drain the writers and verify global consistency: sum of all counters
    // equals total committed updates.
    stop.store(true, Ordering::Release);
    let committed: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let mut total = 0i64;
    db.store().for_each(|_, obj| {
        total += obj.value.as_int().unwrap();
    });
    assert_eq!(total as u64, committed, "lost or phantom updates");
    println!(
        "soak done: {committed} commits across {} failover epochs, state consistent",
        scale.epochs
    );

    // Final mirror catches up to the full state via snapshot transfer.
    let final_mirror = spawn_mirror(&db);
    let snapshot = db.snapshot();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if final_mirror.store.snapshot() == snapshot {
            break;
        }
        assert!(Instant::now() < deadline, "final mirror never converged");
        std::thread::sleep(Duration::from_millis(10));
    }
    final_mirror.shutdown.store(true, Ordering::Release);
    let _ = final_mirror.thread.join();
}

/// Reduced-scale soak that runs in the default suite (about a second):
/// one failover epoch, fewer objects and writers, same invariants.
#[test]
fn soak_smoke() {
    soak(&SoakScale {
        objects: 200,
        epochs: 1,
        writers: 2,
        epoch_live: Duration::from_millis(300),
        epoch_probe: Duration::from_millis(150),
    });
}

#[test]
#[ignore = "soak test: ~20 s of sustained load; run explicitly"]
fn sustained_load_with_repeated_failovers() {
    soak(&SoakScale {
        objects: 2_000,
        epochs: 5,
        writers: 4,
        epoch_live: Duration::from_millis(1_500),
        epoch_probe: Duration::from_millis(500),
    });
}
