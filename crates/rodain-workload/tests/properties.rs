//! Property-based tests of trace generation and the trace-file format.

use proptest::prelude::*;
use rodain_workload::{AccessPattern, Trace, TraceGenerator, TxnKind, TxnRequest, WorkloadSpec};

fn request_strategy() -> impl Strategy<Value = TxnRequest> {
    (
        any::<u64>(),
        any::<u64>(),
        prop_oneof![
            Just(TxnKind::ReadOnly),
            Just(TxnKind::Update),
            Just(TxnKind::NonRealTime)
        ],
        prop::option::of(1..u64::MAX / 2),
        prop::collection::vec(any::<u64>(), 1..6),
    )
        .prop_map(|(seq, arrival_ns, kind, deadline, objects)| TxnRequest {
            seq,
            arrival_ns,
            kind,
            relative_deadline_ns: if kind == TxnKind::NonRealTime {
                None
            } else {
                deadline.or(Some(1))
            },
            objects,
        })
}

proptest! {
    /// The "off-line generated test file" format is lossless for any trace.
    #[test]
    fn trace_file_roundtrip(requests in prop::collection::vec(request_strategy(), 0..40)) {
        let trace = Trace { requests };
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let parsed = Trace::read_from(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// Generated traces satisfy their spec's structural invariants for any
    /// parameter combination.
    #[test]
    fn generated_traces_are_well_formed(
        seed in any::<u64>(),
        rate in 1.0f64..2_000.0,
        write_fraction in 0.0f64..=1.0,
        jitter in 0.0f64..0.9,
        db_objects in 10u64..5_000,
        count in 1u64..400,
    ) {
        let spec = WorkloadSpec {
            seed,
            arrival_rate_tps: rate,
            write_fraction,
            deadline_jitter: jitter,
            db_objects,
            count,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec.clone()).generate();
        prop_assert_eq!(trace.len() as u64, count);
        let mut prev_arrival = 0u64;
        for (i, r) in trace.requests.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64);
            prop_assert!(r.arrival_ns >= prev_arrival, "arrivals sorted");
            prev_arrival = r.arrival_ns;
            prop_assert!(!r.objects.is_empty());
            prop_assert!(r.objects.iter().all(|&o| o < db_objects));
            match r.kind {
                TxnKind::NonRealTime => prop_assert!(r.relative_deadline_ns.is_none()),
                TxnKind::ReadOnly => {
                    let d = r.relative_deadline_ns.unwrap();
                    let base = spec.read_deadline_ms * 1_000_000;
                    let lo = (base as f64 * (1.0 - jitter) - 2.0) as u64;
                    let hi = (base as f64 * (1.0 + jitter) + 2.0) as u64;
                    prop_assert!((lo..=hi).contains(&d), "read deadline {d} outside [{lo},{hi}]");
                }
                TxnKind::Update => {
                    let d = r.relative_deadline_ns.unwrap();
                    let base = spec.write_deadline_ms * 1_000_000;
                    let lo = (base as f64 * (1.0 - jitter) - 2.0) as u64;
                    let hi = (base as f64 * (1.0 + jitter) + 2.0) as u64;
                    prop_assert!((lo..=hi).contains(&d), "write deadline {d} outside [{lo},{hi}]");
                }
            }
        }
        // Determinism.
        let again = TraceGenerator::new(spec).generate();
        prop_assert_eq!(again, trace);
    }

    /// For any seed and any meaningful skew, Zipfian access concentrates
    /// draws on the low ranks: the first decile of the keyspace always
    /// receives more than its uniform share of accesses, and every rank
    /// stays inside the database.
    #[test]
    fn zipfian_lower_ranks_dominate(
        seed in any::<u64>(),
        theta in 0.4f64..0.99,
        db_objects in 200u64..3_000,
    ) {
        let spec = WorkloadSpec {
            seed,
            db_objects,
            count: 600,
            access: AccessPattern::Zipfian { theta },
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        let cut = db_objects / 10;
        let total = trace.requests.iter().map(|r| r.objects.len()).sum::<usize>();
        let head = trace
            .requests
            .iter()
            .flat_map(|r| &r.objects)
            .filter(|&&o| o < cut)
            .count();
        prop_assert!(trace.requests.iter().flat_map(|r| &r.objects).all(|&o| o < db_objects));
        // Uniform would put ~10% below the cut; even theta = 0.4 with a
        // small sample stays comfortably above double that.
        let share = head as f64 / total as f64;
        prop_assert!(share > 0.2, "head share {share} with theta {theta}");
    }
}
