//! Blocking client for the User Request Interpreter protocol.

use crate::protocol::{
    read_frame, write_frame, MetricsFormat, Outcome, Request, RequestOp, Response,
};
use rodain_store::{ObjectId, Value};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking client connection.
///
/// Responses arrive in request order, so single-request helpers
/// ([`Client::translate`], [`Client::provision`], …) simply read the next
/// frame; [`Client::pipeline`] sends a burst and collects all replies.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    fn send(&mut self, deadline_ms: u32, op: RequestOp) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request {
            id,
            deadline_ms,
            op,
        };
        write_frame(&mut self.writer, &request.encode())?;
        Ok(id)
    }

    fn recv(&mut self) -> std::io::Result<Response> {
        self.writer.flush()?;
        let frame = read_frame(&mut self.reader)?;
        Response::decode(frame)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// One request, blocking for its outcome.
    pub fn request(&mut self, deadline_ms: u32, op: RequestOp) -> std::io::Result<Outcome> {
        let id = self.send(deadline_ms, op)?;
        let response = self.recv()?;
        debug_assert_eq!(response.id, id);
        Ok(response.outcome)
    }

    /// Translate a service number (read-only service provision).
    pub fn translate(&mut self, number: u64, deadline_ms: u32) -> std::io::Result<Outcome> {
        self.request(deadline_ms, RequestOp::Translate { number })
    }

    /// Re-point a service number (update service provision).
    pub fn provision(
        &mut self,
        number: u64,
        address: impl Into<String>,
        deadline_ms: u32,
    ) -> std::io::Result<Outcome> {
        self.request(
            deadline_ms,
            RequestOp::Provision {
                number,
                address: address.into(),
            },
        )
    }

    /// Generic object read.
    pub fn get(&mut self, oid: ObjectId, deadline_ms: u32) -> std::io::Result<Outcome> {
        self.request(deadline_ms, RequestOp::Get { oid })
    }

    /// Generic object write.
    pub fn put(
        &mut self,
        oid: ObjectId,
        value: Value,
        deadline_ms: u32,
    ) -> std::io::Result<Outcome> {
        self.request(deadline_ms, RequestOp::Put { oid, value })
    }

    /// Engine statistics as `Record[committed, aborted, restarts, active]`.
    pub fn stats(&mut self) -> std::io::Result<Outcome> {
        self.request(0, RequestOp::Stats)
    }

    /// Full metrics snapshot rendered in the requested format.
    ///
    /// Returns `Outcome::Ok(Value::Text(..))` holding the rendered
    /// snapshot — human-readable lines, JSON, or Prometheus exposition
    /// depending on `format`. See the repository's `METRICS.md` for the
    /// metric catalog.
    pub fn metrics(&mut self, format: MetricsFormat) -> std::io::Result<Outcome> {
        self.request(0, RequestOp::Metrics { format })
    }

    /// Send a burst of pipelined requests and collect all responses
    /// (returned in request order).
    pub fn pipeline(&mut self, requests: Vec<(u32, RequestOp)>) -> std::io::Result<Vec<Outcome>> {
        let n = requests.len();
        for (deadline_ms, op) in requests {
            self.send(deadline_ms, op)?;
        }
        let mut outcomes = Vec::with_capacity(n);
        for _ in 0..n {
            outcomes.push(self.recv()?.outcome);
        }
        Ok(outcomes)
    }
}
