//! Log record encode/decode throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rodain_log::{encode_record, FrameDecoder, LogRecord, Lsn, RecordKind};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Ts, TxnId, Value};

fn sample_write(i: u64) -> LogRecord {
    LogRecord {
        lsn: Lsn(i),
        txn: TxnId(i / 3),
        kind: RecordKind::Write {
            oid: ObjectId(i % 30_000),
            image: Value::Record(vec![
                Value::Text(format!("+358-40-{i:07}")),
                Value::Int(3),
                Value::Int(i as i64),
            ]),
        },
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("log-codec");
    group.throughput(Throughput::Elements(1));

    group.bench_function("encode_write", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(encode_record(&sample_write(i)))
        })
    });

    group.bench_function("encode_commit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(encode_record(&LogRecord {
                lsn: Lsn(i),
                txn: TxnId(i),
                kind: RecordKind::Commit {
                    csn: Csn(i),
                    ser_ts: Ts(i << 20),
                    n_writes: 2,
                },
            }))
        })
    });

    let frames: Vec<_> = (0..1_000u64)
        .map(|i| encode_record(&sample_write(i)))
        .collect();
    let stream: Vec<u8> = frames.iter().flat_map(|f| f.to_vec()).collect();
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("decode_stream_1000", |b| {
        b.iter(|| {
            let mut dec = FrameDecoder::new();
            dec.feed(&stream);
            let mut n = 0;
            while let Ok(Some(rec)) = dec.next_record() {
                black_box(&rec);
                n += 1;
            }
            assert_eq!(n, 1_000);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
