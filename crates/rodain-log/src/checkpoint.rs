//! Checkpoint snapshots on disk (extension; see DESIGN.md §3.4).
//!
//! A checkpoint bounds recovery time and lets the disk log be truncated:
//! the snapshot file captures the full database as of a commit sequence
//! number; every log segment whose commits all lie below that CSN becomes
//! garbage. Recovery then restores the newest intact snapshot and replays
//! only the log tail (replaying retained pre-checkpoint segments is
//! harmless — installs are idempotent at equal timestamps).
//!
//! File format (`*.rodainsnap`):
//!
//! ```text
//! magic "RODAINSN" · version u32 · csn u64 · object count u64
//! repeat count times: oid u64 · wts u64 · rts u64 · value (log codec)
//! crc32 u32 over everything before it
//! ```

use crate::codec::{decode_value, encode_value, CodecError};
use crate::crc32::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Snapshot, Ts, VersionedObject};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const SNAPSHOT_MAGIC: &[u8; 8] = b"RODAINSN";
const SNAPSHOT_VERSION: u32 = 1;

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {what}"))
}

impl From<CodecError> for io::Error {
    fn from(e: CodecError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Serialize a snapshot (with the first CSN *not* covered) to bytes.
#[must_use]
pub fn encode_snapshot(snapshot: &Snapshot, upto: Csn) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + snapshot.len() * 48);
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u32_le(SNAPSHOT_VERSION);
    buf.put_u64_le(upto.0);
    buf.put_u64_le(snapshot.len() as u64);
    for (oid, obj) in &snapshot.objects {
        buf.put_u64_le(oid.0);
        buf.put_u64_le(obj.wts.0);
        buf.put_u64_le(obj.rts.0);
        encode_value(&mut buf, &obj.value);
    }
    let checksum = crc32(&buf);
    buf.put_u32_le(checksum);
    buf.freeze()
}

/// Parse bytes produced by [`encode_snapshot`].
pub fn decode_snapshot(data: &[u8]) -> io::Result<(Snapshot, Csn)> {
    if data.len() < 8 + 4 + 8 + 8 + 4 {
        return Err(corrupt("too short"));
    }
    let (body, tail) = data.split_at(data.len() - 4);
    let expected = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    if crc32(body) != expected {
        return Err(corrupt("checksum mismatch"));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    if buf.get_u32_le() != SNAPSHOT_VERSION {
        return Err(corrupt("unsupported version"));
    }
    let upto = Csn(buf.get_u64_le());
    let count = buf.get_u64_le();
    let mut objects = Vec::with_capacity(count.min(1_000_000) as usize);
    for _ in 0..count {
        if buf.remaining() < 24 {
            return Err(corrupt("truncated object header"));
        }
        let oid = ObjectId(buf.get_u64_le());
        let wts = Ts(buf.get_u64_le());
        let rts = Ts(buf.get_u64_le());
        let value = decode_value(&mut buf)?;
        objects.push((oid, VersionedObject { value, wts, rts }));
    }
    if buf.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok((Snapshot { objects }, upto))
}

/// Write a checkpoint snapshot atomically (tmp file + rename) into `dir`;
/// returns its path (`checkpoint-<csn>.rodainsnap`).
pub fn write_snapshot_file(dir: &Path, snapshot: &Snapshot, upto: Csn) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("checkpoint-{:020}.rodainsnap", upto.0));
    let tmp = dir.join(format!(".checkpoint-{:020}.tmp", upto.0));
    let bytes = encode_snapshot(snapshot, upto);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Locate and read the newest intact checkpoint in `dir`. Corrupt files
/// are skipped (older intact checkpoints still recover). `Ok(None)` when
/// no usable checkpoint exists.
pub fn read_latest_snapshot(dir: &Path) -> io::Result<Option<(Snapshot, Csn, PathBuf)>> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut candidates: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("checkpoint-") && name.ends_with(".rodainsnap")).then_some(path)
        })
        .collect();
    candidates.sort();
    for path in candidates.into_iter().rev() {
        let mut data = Vec::new();
        if fs::File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut data))
            .is_err()
        {
            continue;
        }
        match decode_snapshot(&data) {
            Ok((snapshot, upto)) => return Ok(Some((snapshot, upto, path))),
            Err(_) => continue, // torn checkpoint: fall back to an older one
        }
    }
    Ok(None)
}

/// Delete checkpoints older than the newest `keep` (garbage collection).
pub fn prune_snapshots(dir: &Path, keep: usize) -> io::Result<usize> {
    if !dir.exists() {
        return Ok(0);
    }
    let mut candidates: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("checkpoint-") && name.ends_with(".rodainsnap")).then_some(path)
        })
        .collect();
    candidates.sort();
    let n = candidates.len().saturating_sub(keep.max(1));
    for path in &candidates[..n] {
        fs::remove_file(path)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_store::{Store, Value};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rodain-checkpoint-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_snapshot(n: u64) -> Snapshot {
        let store = Store::new();
        for i in 0..n {
            store.install(
                ObjectId(i),
                Value::Record(vec![Value::Text(format!("v{i}")), Value::Int(i as i64)]),
                Ts(i * 100),
            );
        }
        store.snapshot()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample_snapshot(50);
        let bytes = encode_snapshot(&snap, Csn(42));
        let (decoded, upto) = decode_snapshot(&bytes).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(upto, Csn(42));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = encode_snapshot(&Snapshot::default(), Csn(1));
        let (decoded, upto) = decode_snapshot(&bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(upto, Csn(1));
    }

    #[test]
    fn corruption_is_detected() {
        let snap = sample_snapshot(10);
        let bytes = encode_snapshot(&snap, Csn(7)).to_vec();
        for idx in [0, 12, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[idx] ^= 0x40;
            assert!(decode_snapshot(&corrupted).is_err(), "flip at {idx}");
        }
        // Truncation too.
        assert!(decode_snapshot(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn file_roundtrip_and_latest_selection() {
        let dir = tmpdir("latest");
        write_snapshot_file(&dir, &sample_snapshot(5), Csn(10)).unwrap();
        write_snapshot_file(&dir, &sample_snapshot(8), Csn(20)).unwrap();
        let (snapshot, upto, path) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(20));
        assert_eq!(snapshot.len(), 8);
        assert!(path.to_str().unwrap().contains("00000000000000000020"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_falls_back_to_older() {
        let dir = tmpdir("fallback");
        write_snapshot_file(&dir, &sample_snapshot(5), Csn(10)).unwrap();
        let newest = write_snapshot_file(&dir, &sample_snapshot(8), Csn(20)).unwrap();
        // Tear the newest one.
        let data = fs::read(&newest).unwrap();
        fs::write(&newest, &data[..data.len() - 3]).unwrap();
        let (snapshot, upto, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(10));
        assert_eq!(snapshot.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_none() {
        let dir = tmpdir("missing"); // never created
        assert!(read_latest_snapshot(&dir).unwrap().is_none());
        assert_eq!(prune_snapshots(&dir, 1).unwrap(), 0);
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmpdir("prune");
        for csn in [1u64, 2, 3, 4] {
            write_snapshot_file(&dir, &sample_snapshot(2), Csn(csn)).unwrap();
        }
        assert_eq!(prune_snapshots(&dir, 2).unwrap(), 2);
        let (_, upto, _) = read_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(upto, Csn(4));
        let _ = fs::remove_dir_all(&dir);
    }
}
