//! # rodain-log — the redo-log subsystem
//!
//! Log records serve two purposes in a RODAIN node (paper §3):
//!
//! 1. they keep the **Mirror Node**'s database copy up to date, so it can
//!    take over almost instantaneously when the Primary fails;
//! 2. they are stored on **secondary media** exactly as in a traditional
//!    database, protecting against simultaneous failure of both nodes (and
//!    enabling off-line analysis).
//!
//! The commit protocol this crate supports:
//!
//! * during the write phase each update generates a [`LogRecord`] carrying
//!   the transaction id, the object id and the **after-image**;
//! * a [`RecordKind::Commit`] record carries the commit sequence number
//!   ([`rodain_occ::Csn`]) — the *true validation order*;
//! * the mirror's [`ReorderBuffer`] regroups the interleaved stream per
//!   transaction and releases committed transactions in validation order,
//!   so the database copy never needs an undo and recovery is a single
//!   forward pass;
//! * [`LogStorage`] appends the reordered stream to segmented files with
//!   per-record CRC32 framing and torn-tail detection;
//! * [`GroupCommitLog`] batches concurrent synchronous flushes — the commit
//!   path of a node running *alone* (Contingency mode), where the paper's
//!   "one message round-trip instead of a disk write" trade inverts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod codec;
mod crc32;
mod faults;
mod group;
mod record;
mod recovery;
mod reorder;
mod storage;
mod throttle;
mod writer;

pub use checkpoint::{
    decode_snapshot, encode_snapshot, prune_snapshots, read_latest_snapshot, write_snapshot_file,
    write_snapshot_file_with_crash, SnapshotCrashPoint,
};
pub use codec::{
    decode_record, decode_value, encode_record, encode_record_into, encode_value, peek_envelope,
    CodecError, FrameDecoder, FrameEnvelope, MAX_FRAME_BYTES,
};
pub use crc32::crc32;
pub use faults::{DiskFaultControl, FaultyStorage};
pub use group::{GroupCommitLog, GroupCommitStats};
pub use record::{LogRecord, Lsn, RecordKind};
pub use recovery::{
    replay_frames_into, replay_into, ApplierStats, PartitionedApplier, RecoveryError,
    RecoveryStats, ReplayOptions,
};
pub use reorder::{CommittedTxn, IngestOutcome, ReorderBuffer, ReorderError};
pub use storage::{
    FrameIter, LogStorage, LogStorageConfig, RecordIter, StorageBackend, StorageStats,
};
pub use throttle::ThrottledStorage;
pub use writer::RecordBuilder;
