//! CLUSTERSCALE: SHARDSCALE re-run across *processes*. Each shard seats
//! in its own `cluster_node` process behind real loopback sockets; the
//! driver partitions a Zipfian single-object update stream by the shard
//! router and pushes each partition through a map-aware [`ClusterClient`]
//! over the wire. The commit path inside every node is the paper
//! prototype's: synchronous group commit, batch 1, a 1 ms log-device
//! service time per flush — so one node serializes commits at the log
//! rate and N nodes overlap N independent log streams.
//!
//! The gate mirrors SHARDSCALE's: 4 nodes must clear 2× the committed
//! throughput of 1 node, now with process isolation and TCP in the loop.

use crate::report::{ms, Table};
use rodain_cluster::harness::{node_binary, NodeProcess, NodeProcessConfig};
use rodain_cluster::{ClusterClient, ClusterCoordinator, ShardMap, ShardOwner};
use rodain_server::Outcome;
use rodain_shard::ShardRouter;
use rodain_store::{ObjectId, Value};
use rodain_workload::{AccessPattern, NumberTranslationDb, TraceGenerator, WorkloadSpec};
use std::time::Instant;

/// Node counts swept (one shard per node process).
pub const NODE_SWEEP: [usize; 3] = [1, 2, 4];

/// Log-device service time charged per flush inside each node (µs).
const FLUSH_DELAY_US: u64 = 1_000;
/// Objects in the database (same population as SHARDSCALE).
const DB_OBJECTS: u64 = 4_096;

/// One swept configuration: `nodes` processes, one shard each.
#[derive(Clone, Debug)]
pub struct ClusterScaleRow {
    /// Node processes (= shards) in this configuration.
    pub nodes: usize,
    /// Transactions acknowledged `Ok` over the wire.
    pub committed: u64,
    /// Wall-clock seconds for the whole partitioned stream.
    pub wall_s: f64,
    /// Committed throughput (txn/s).
    pub tput_tps: f64,
    /// Client-observed per-request p50 (ns), socket round trip included.
    pub p50_ns: u64,
    /// Client-observed per-request p99 (ns).
    pub p99_ns: u64,
}

/// CLUSTERSCALE result across the node sweep.
#[derive(Clone, Debug)]
pub struct ClusterScaleReport {
    /// One row per entry of [`NODE_SWEEP`], in sweep order.
    pub rows: Vec<ClusterScaleRow>,
    /// Transactions driven per configuration.
    pub count: u64,
}

impl ClusterScaleReport {
    /// Committed-throughput speedup of the `nodes`-node row over 1 node.
    #[must_use]
    pub fn speedup_at(&self, nodes: usize) -> f64 {
        let base = self
            .rows
            .iter()
            .find(|r| r.nodes == 1)
            .map_or(0.0, |r| r.tput_tps);
        self.rows
            .iter()
            .find(|r| r.nodes == nodes)
            .map_or(0.0, |r| r.tput_tps / base.max(f64::EPSILON))
    }

    /// Render as the usual markdown table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "CLUSTERSCALE — committed throughput vs node count, one shard \
                 per process over loopback TCP, group-commit batch=1, \
                 {}ms flush service time, Zipfian(0.8) single-object updates \
                 ({} txns per row)",
                FLUSH_DELAY_US / 1_000,
                self.count
            ),
            &[
                "nodes",
                "committed",
                "wall (s)",
                "tput (tps)",
                "speedup vs 1 node",
                "request p50 (ms)",
                "request p99 (ms)",
            ],
        );
        for row in &self.rows {
            table.push(vec![
                row.nodes.to_string(),
                row.committed.to_string(),
                format!("{:.2}", row.wall_s),
                format!("{:.0}", row.tput_tps),
                format!("{:.2}x", self.speedup_at(row.nodes)),
                ms(row.p50_ns as f64),
                ms(row.p99_ns as f64),
            ]);
        }
        table
    }

    /// Hand-rolled JSON (the bench crate deliberately has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"nodes\": {}, \"committed\": {}, \"wall_s\": {:.3}, \
                     \"tput_tps\": {:.1}, \"speedup\": {:.3}, \
                     \"request_ns\": {{\"p50\": {}, \"p99\": {}}}}}",
                    r.nodes,
                    r.committed,
                    r.wall_s,
                    r.tput_tps,
                    self.speedup_at(r.nodes),
                    r.p50_ns,
                    r.p99_ns
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"experiment\": \"CLUSTERSCALE\",\n  \"count\": {},\n  \
             \"rows\": [\n{}\n  ],\n  \"speedup_at_4\": {:.3}\n}}\n",
            self.count,
            rows,
            self.speedup_at(4)
        )
    }
}

fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx]
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rodain-clusterscale-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("cluster scratch dir");
    dir
}

/// Drive one configuration: spawn `nodes` single-shard processes, install
/// the epoch-2 deployment map, then push each anchor partition through a
/// per-shard [`ClusterClient`] from its own thread.
fn cluster_scale_point(bin: &std::path::Path, nodes: usize, anchors: &[u64]) -> ClusterScaleRow {
    let router = ShardRouter::new(nodes);
    let dirs: Vec<_> = (0..nodes).map(|s| scratch_dir(&format!("n{nodes}-s{s}"))).collect();
    let procs: Vec<NodeProcess> = (0..nodes)
        .map(|s| {
            let mut cfg = NodeProcessConfig::new(nodes, vec![s], &dirs[s]);
            cfg.flush_delay_us = FLUSH_DELAY_US;
            cfg.batch = 1;
            cfg.objects = DB_OBJECTS;
            NodeProcess::spawn(bin, &cfg).expect("spawn cluster node")
        })
        .collect();

    let boot = ClusterCoordinator::connect(&procs[0].peer_addr).expect("boot coordinator");
    let map = ShardMap {
        epoch: 2,
        owners: procs
            .iter()
            .map(|p| ShardOwner {
                client_addr: p.client_addr.clone(),
                peer_addr: p.peer_addr.clone(),
            })
            .collect(),
    };
    let addrs: Vec<String> = procs.iter().map(|p| p.peer_addr.clone()).collect();
    boot.broadcast_map(&map, &addrs).expect("install deployment map");

    let mut partitions: Vec<Vec<u64>> = vec![Vec::new(); nodes];
    for &n in anchors {
        partitions[router.route(ObjectId(n))].push(n);
    }

    let started = Instant::now();
    let handles: Vec<_> = partitions
        .into_iter()
        .enumerate()
        .map(|(shard, part)| {
            let addr = procs[shard].client_addr.clone();
            std::thread::spawn(move || {
                let mut client = ClusterClient::connect(&addr, NumberTranslationDb::new(DB_OBJECTS))
                    .expect("bench client");
                let mut committed = 0u64;
                let mut lat_ns = Vec::with_capacity(part.len());
                for (k, n) in part.iter().enumerate() {
                    let t0 = Instant::now();
                    let outcome = client
                        .put(ObjectId(*n), Value::Int(k as i64))
                        .expect("bench put");
                    lat_ns.push(t0.elapsed().as_nanos() as u64);
                    if matches!(outcome, Outcome::Ok(_)) {
                        committed += 1;
                    }
                }
                (committed, lat_ns)
            })
        })
        .collect();
    let mut committed = 0u64;
    let mut lat_ns: Vec<u64> = Vec::with_capacity(anchors.len());
    for handle in handles {
        let (c, l) = handle.join().expect("bench thread");
        committed += c;
        lat_ns.extend(l);
    }
    let wall_s = started.elapsed().as_secs_f64().max(f64::EPSILON);

    for p in procs {
        p.quit();
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }

    lat_ns.sort_unstable();
    ClusterScaleRow {
        nodes,
        committed,
        wall_s,
        tput_tps: committed as f64 / wall_s,
        p50_ns: percentile(&lat_ns, 0.50),
        p99_ns: percentile(&lat_ns, 0.99),
    }
}

/// CLUSTERSCALE: run the [`NODE_SWEEP`] with `count` transactions per
/// configuration. Returns `None` when the `cluster_node` binary cannot be
/// located (see [`node_binary`]) — callers should report the skip rather
/// than fail, matching the cluster test suites.
#[must_use]
pub fn cluster_scale(count: u64) -> Option<ClusterScaleReport> {
    let bin = node_binary()?;
    let spec = WorkloadSpec {
        count,
        write_fraction: 1.0,
        db_objects: DB_OBJECTS,
        access: AccessPattern::Zipfian { theta: 0.8 },
        ..WorkloadSpec::default()
    };
    let anchors: Vec<u64> = TraceGenerator::new(spec)
        .generate()
        .requests
        .iter()
        .map(|r| r.objects[0])
        .collect();
    let rows = NODE_SWEEP
        .iter()
        .map(|&nodes| cluster_scale_point(&bin, nodes, &anchors))
        .collect();
    Some(ClusterScaleReport { rows, count })
}
