//! Binary framing for log records.
//!
//! Wire/disk format of one record:
//!
//! ```text
//! ┌─────────┬─────────┬────────────────────┐
//! │ len u32 │ crc u32 │ payload (len bytes)│   all integers little-endian
//! └─────────┴─────────┴────────────────────┘
//! payload = lsn u64 · txn u64 · tag u8 · body
//! ```
//!
//! The same framing is used on the primary→mirror link and in the disk
//! segments, so the mirror can append received frames without re-encoding.

use crate::crc32::crc32;
use crate::record::{LogRecord, Lsn, RecordKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Ts, TxnId, Value};
use std::fmt;

/// Upper bound on a single frame; larger lengths are treated as corruption.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// CRC mismatch — the frame is torn or corrupted.
    BadChecksum,
    /// Structurally invalid payload (unknown tag, short body, …).
    Malformed(&'static str),
    /// Frame length exceeds [`MAX_FRAME_BYTES`].
    OversizedFrame(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadChecksum => write!(f, "log frame checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed log frame: {what}"),
            CodecError::OversizedFrame(n) => write!(f, "oversized log frame: {n} bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a [`Value`] into `buf` using the log codec's value format
/// (exposed for higher-level message codecs, e.g. snapshot transfer).
pub fn encode_value(buf: &mut BytesMut, value: &Value) {
    put_value(buf, value);
}

/// Decode a [`Value`] previously written by [`encode_value`].
pub fn decode_value(buf: &mut Bytes) -> Result<Value, CodecError> {
    get_value(buf)
}

fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(0),
        Value::Int(v) => {
            buf.put_u8(1);
            buf.put_i64_le(*v);
        }
        Value::Text(s) => {
            buf.put_u8(2);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(3);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Record(fields) => {
            buf.put_u8(4);
            buf.put_u32_le(fields.len() as u32);
            for field in fields {
                put_value(buf, field);
            }
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Malformed("value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(CodecError::Malformed("int payload"));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        2 => {
            let bytes = get_blob(buf, "text")?;
            String::from_utf8(bytes)
                .map(Value::Text)
                .map_err(|_| CodecError::Malformed("text utf-8"))
        }
        3 => Ok(Value::Bytes(get_blob(buf, "bytes")?)),
        4 => {
            if buf.remaining() < 4 {
                return Err(CodecError::Malformed("record arity"));
            }
            let n = buf.get_u32_le() as usize;
            if n > MAX_FRAME_BYTES / 2 {
                return Err(CodecError::Malformed("record arity bound"));
            }
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fields.push(get_value(buf)?);
            }
            Ok(Value::Record(fields))
        }
        _ => Err(CodecError::Malformed("unknown value tag")),
    }
}

fn get_blob(buf: &mut Bytes, what: &'static str) -> Result<Vec<u8>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Malformed(what));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Malformed(what));
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

fn put_payload(payload: &mut BytesMut, record: &LogRecord) {
    payload.put_u64_le(record.lsn.0);
    payload.put_u64_le(record.txn.0);
    match &record.kind {
        RecordKind::Write { oid, image } => {
            payload.put_u8(0);
            payload.put_u64_le(oid.0);
            put_value(payload, image);
        }
        RecordKind::Commit {
            csn,
            ser_ts,
            n_writes,
        } => {
            payload.put_u8(1);
            payload.put_u64_le(csn.0);
            payload.put_u64_le(ser_ts.0);
            payload.put_u32_le(*n_writes);
        }
        RecordKind::Abort => payload.put_u8(2),
        RecordKind::Checkpoint { upto, snapshot_id } => {
            payload.put_u8(3);
            payload.put_u64_le(upto.0);
            payload.put_u64_le(*snapshot_id);
        }
    }
}

/// Encode a record into a self-delimiting frame.
#[must_use]
pub fn encode_record(record: &LogRecord) -> Bytes {
    let mut frame = BytesMut::with_capacity(8 + record.approx_size());
    encode_record_into(record, &mut frame);
    frame.freeze()
}

/// Append one framed record to `frame` without allocating a frame buffer
/// of its own.
///
/// This is the batching primitive: a shipper appends many records to one
/// reused buffer and freezes the whole batch once. The crc covers only the
/// payload and must be known before the header is written, so the payload
/// is staged in a scratch buffer first — still one transient allocation
/// fewer than [`encode_record`]'s historical payload+frame pair per record.
pub fn encode_record_into(record: &LogRecord, frame: &mut BytesMut) {
    let mut payload = BytesMut::with_capacity(record.approx_size());
    put_payload(&mut payload, record);
    frame.put_u32_le(payload.len() as u32);
    frame.put_u32_le(crc32(&payload));
    frame.put_slice(&payload);
}

/// Decode one frame's payload (checksum already verified).
pub fn decode_record(mut payload: Bytes) -> Result<LogRecord, CodecError> {
    if payload.remaining() < 17 {
        return Err(CodecError::Malformed("payload header"));
    }
    let lsn = Lsn(payload.get_u64_le());
    let txn = TxnId(payload.get_u64_le());
    let kind = match payload.get_u8() {
        0 => {
            if payload.remaining() < 8 {
                return Err(CodecError::Malformed("write oid"));
            }
            let oid = ObjectId(payload.get_u64_le());
            let image = get_value(&mut payload)?;
            RecordKind::Write { oid, image }
        }
        1 => {
            if payload.remaining() < 20 {
                return Err(CodecError::Malformed("commit body"));
            }
            RecordKind::Commit {
                csn: Csn(payload.get_u64_le()),
                ser_ts: Ts(payload.get_u64_le()),
                n_writes: payload.get_u32_le(),
            }
        }
        2 => RecordKind::Abort,
        3 => {
            if payload.remaining() < 16 {
                return Err(CodecError::Malformed("checkpoint body"));
            }
            RecordKind::Checkpoint {
                upto: Csn(payload.get_u64_le()),
                snapshot_id: payload.get_u64_le(),
            }
        }
        _ => return Err(CodecError::Malformed("unknown record tag")),
    };
    if payload.has_remaining() {
        return Err(CodecError::Malformed("trailing bytes"));
    }
    Ok(LogRecord { lsn, txn, kind })
}

/// A cheap, allocation-free summary of one frame payload.
///
/// The payload layout puts every routing-relevant field at a fixed offset
/// (`lsn` 0..8, `txn` 8..16, tag at 16, then per-kind fields), so a replay
/// dispatcher can route a frame to its partition worker *without* decoding
/// the after-image — the expensive part of [`decode_record`]. The worker
/// that owns the partition pays for the full decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameEnvelope {
    /// A write record touching `oid`.
    Write {
        /// The writing transaction.
        txn: TxnId,
        /// The object written (determines the partition).
        oid: ObjectId,
    },
    /// A commit record.
    Commit {
        /// The committing transaction.
        txn: TxnId,
        /// Commit sequence number.
        csn: Csn,
        /// Serialization timestamp.
        ser_ts: Ts,
        /// Number of write records the group must contain.
        n_writes: u32,
    },
    /// An abort record.
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// A checkpoint marker (no replay effect).
    Checkpoint,
}

/// Peek a payload's envelope without decoding the value body.
pub fn peek_envelope(payload: &[u8]) -> Result<FrameEnvelope, CodecError> {
    if payload.len() < 17 {
        return Err(CodecError::Malformed("payload header"));
    }
    let le_u64 = |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
    let txn = TxnId(le_u64(8));
    match payload[16] {
        0 => {
            if payload.len() < 25 {
                return Err(CodecError::Malformed("write oid"));
            }
            Ok(FrameEnvelope::Write {
                txn,
                oid: ObjectId(le_u64(17)),
            })
        }
        1 => {
            if payload.len() < 37 {
                return Err(CodecError::Malformed("commit body"));
            }
            Ok(FrameEnvelope::Commit {
                txn,
                csn: Csn(le_u64(17)),
                ser_ts: Ts(le_u64(25)),
                n_writes: u32::from_le_bytes(payload[33..37].try_into().unwrap()),
            })
        }
        2 => Ok(FrameEnvelope::Abort { txn }),
        3 => Ok(FrameEnvelope::Checkpoint),
        _ => Err(CodecError::Malformed("unknown record tag")),
    }
}

/// Incremental frame decoder for byte streams (TCP link, disk segments).
///
/// Feed arbitrary chunks with [`FrameDecoder::feed`], then pull complete
/// records with [`FrameDecoder::next_record`]. `Ok(None)` means "need more
/// bytes" — at end of a disk segment that state is a (tolerated) torn tail.
#[derive(Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// Create an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Total on-disk extent (header + payload) of the frame at the head of
    /// the buffer, if its length field is available. Used by the dirty-log
    /// policy to decide whether a failing frame runs to end-of-file (a torn
    /// tail) or has bytes after it (mid-log corruption).
    #[must_use]
    pub fn pending_frame_extent(&self) -> Option<usize> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        Some(8 + len)
    }

    /// Try to extract the next complete, checksum-verified frame payload.
    ///
    /// On error the buffer is left untouched (the failing frame stays at
    /// the head), so callers can classify the damage via
    /// [`FrameDecoder::pending_frame_extent`] and [`FrameDecoder::buffered`].
    pub fn next_payload(&mut self) -> Result<Option<Bytes>, CodecError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(CodecError::OversizedFrame(len));
        }
        if self.buf.len() < 8 + len {
            return Ok(None);
        }
        let expected_crc = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
        if crc32(&self.buf[8..8 + len]) != expected_crc {
            return Err(CodecError::BadChecksum);
        }
        self.buf.advance(8);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Try to decode the next complete record.
    pub fn next_record(&mut self) -> Result<Option<LogRecord>, CodecError> {
        match self.next_payload()? {
            Some(payload) => decode_record(payload).map(Some),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord {
                lsn: Lsn(1),
                txn: TxnId(7),
                kind: RecordKind::Write {
                    oid: ObjectId(42),
                    image: Value::Record(vec![
                        Value::Int(-5),
                        Value::Text("route-0800".into()),
                        Value::Bytes(vec![1, 2, 3]),
                        Value::Null,
                    ]),
                },
            },
            LogRecord {
                lsn: Lsn(2),
                txn: TxnId(7),
                kind: RecordKind::Commit {
                    csn: Csn(3),
                    ser_ts: Ts(1 << 21),
                    n_writes: 1,
                },
            },
            LogRecord {
                lsn: Lsn(3),
                txn: TxnId(8),
                kind: RecordKind::Abort,
            },
            LogRecord {
                lsn: Lsn(4),
                txn: TxnId(0),
                kind: RecordKind::Checkpoint {
                    upto: Csn(3),
                    snapshot_id: 99,
                },
            },
        ]
    }

    #[test]
    fn roundtrip_every_kind() {
        for rec in sample_records() {
            let frame = encode_record(&rec);
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            let got = dec.next_record().unwrap().unwrap();
            assert_eq!(got, rec);
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn encode_into_matches_encode() {
        // A multi-record batch built with encode_record_into is exactly the
        // concatenation of the per-record frames.
        let records = sample_records();
        let mut batch = BytesMut::new();
        let mut reference = Vec::new();
        for r in &records {
            encode_record_into(r, &mut batch);
            reference.extend_from_slice(&encode_record(r));
        }
        assert_eq!(&batch[..], &reference[..]);
        let mut dec = FrameDecoder::new();
        dec.feed(&batch);
        let mut out = Vec::new();
        while let Some(r) = dec.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out, records);
    }

    #[test]
    fn stream_reassembles_across_chunk_boundaries() {
        let records = sample_records();
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&encode_record(r));
        }
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in wire {
            dec.feed(&[b]);
            while let Some(r) = dec.next_record().unwrap() {
                out.push(r);
            }
        }
        assert_eq!(out, records);
    }

    #[test]
    fn incomplete_frame_returns_none() {
        let frame = encode_record(&sample_records()[0]);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame[..frame.len() - 1]);
        assert_eq!(dec.next_record().unwrap(), None);
        dec.feed(&frame[frame.len() - 1..]);
        assert!(dec.next_record().unwrap().is_some());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut frame = encode_record(&sample_records()[0]).to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert_eq!(dec.next_record(), Err(CodecError::BadChecksum));
    }

    #[test]
    fn absurd_length_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(u32::MAX).to_le_bytes());
        dec.feed(&[0u8; 4]);
        match dec.next_record() {
            Err(CodecError::OversizedFrame(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_tag_is_malformed() {
        // Hand-build a payload with tag 9.
        let mut payload = BytesMut::new();
        payload.put_u64_le(1);
        payload.put_u64_le(1);
        payload.put_u8(9);
        let payload = payload.freeze();
        assert!(matches!(
            decode_record(payload),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        let mut payload = BytesMut::new();
        payload.put_u64_le(1);
        payload.put_u64_le(1);
        payload.put_u8(2); // abort
        payload.put_u8(0xAA); // junk
        assert!(matches!(
            decode_record(payload.freeze()),
            Err(CodecError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn envelope_peek_matches_full_decode() {
        for rec in sample_records() {
            let frame = encode_record(&rec);
            let mut dec = FrameDecoder::new();
            dec.feed(&frame);
            let payload = dec.next_payload().unwrap().unwrap();
            let env = peek_envelope(&payload).unwrap();
            match (&rec.kind, env) {
                (RecordKind::Write { oid, .. }, FrameEnvelope::Write { txn, oid: e_oid }) => {
                    assert_eq!(txn, rec.txn);
                    assert_eq!(e_oid, *oid);
                }
                (
                    RecordKind::Commit {
                        csn,
                        ser_ts,
                        n_writes,
                    },
                    FrameEnvelope::Commit {
                        txn,
                        csn: e_csn,
                        ser_ts: e_ts,
                        n_writes: e_n,
                    },
                ) => {
                    assert_eq!(txn, rec.txn);
                    assert_eq!(e_csn, *csn);
                    assert_eq!(e_ts, *ser_ts);
                    assert_eq!(e_n, *n_writes);
                }
                (RecordKind::Abort, FrameEnvelope::Abort { txn }) => assert_eq!(txn, rec.txn),
                (RecordKind::Checkpoint { .. }, FrameEnvelope::Checkpoint) => {}
                (kind, env) => panic!("envelope {env:?} does not match {kind:?}"),
            }
            // The payload must still decode fully after peeking.
            assert_eq!(decode_record(payload).unwrap(), rec);
        }
    }

    #[test]
    fn bad_checksum_leaves_buffer_for_inspection() {
        let mut frame = encode_record(&sample_records()[0]).to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert_eq!(dec.next_payload(), Err(CodecError::BadChecksum));
        // The failing frame stays at the head: extent covers the full frame.
        assert_eq!(dec.pending_frame_extent(), Some(frame.len()));
        assert_eq!(dec.buffered(), frame.len());
    }

    #[test]
    fn empty_text_and_bytes_roundtrip() {
        let rec = LogRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            kind: RecordKind::Write {
                oid: ObjectId(1),
                image: Value::Record(vec![
                    Value::Text(String::new()),
                    Value::Bytes(Vec::new()),
                    Value::Record(Vec::new()),
                ]),
            },
        };
        let frame = encode_record(&rec);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert_eq!(dec.next_record().unwrap().unwrap(), rec);
    }
}
