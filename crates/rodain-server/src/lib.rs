//! # rodain-server — the User Request Interpreter
//!
//! The front-most subsystem of the RODAIN node (paper Fig. 1): the **User
//! Request Interpreter** accepts "requests and new connections" from
//! applications and returns "query and update results". This crate provides:
//!
//! * the client↔node [`protocol`] (version [`PROTOCOL_VERSION`]) —
//!   length-prefixed request/response frames carrying the
//!   number-translation service operations plus generic object
//!   reads/writes, each tagged with a firm deadline, a
//!   [`rodain_db::DurabilityTier`] and an optional *deferred* flag that
//!   splits the answer into `CommitPending` + `CommitDurable` frames;
//! * [`Server`] — an event-driven TCP front-end (DESIGN.md §17): one loop
//!   thread multiplexes every client socket through the
//!   [`rodain_net::Poller`], a fixed worker pool (`min(cores, 16)` by
//!   default, [`FrontEndConfig`]) executes decoded requests through the
//!   engine's `submit()`/`CommitFuture` path, and responses are
//!   correlated by request id so pipelined requests on one connection
//!   complete out of order. Backpressure is end-to-end: per-connection
//!   in-flight caps park a connection's read interest (TCP flow control
//!   stalls the sender), and a global admission gate answers `Overloaded`
//!   before decode work. [`Server::start_threaded`] keeps the
//!   thread-per-connection baseline; [`Server::sharded`] serves a
//!   hash-partitioned [`rodain_shard::ShardedRodain`] cluster instead,
//!   routing each request to the shard owning its object and answering
//!   `Stats`/`Metrics` with cluster-wide merges;
//! * [`Client`] — a blocking client with id-correlated pipelining and
//!   deferred-commit support ([`Client::submit_deferred`] /
//!   [`Client::wait_durable`]).
//!
//! Deadlines travel with the request: a request that cannot be served
//! within its firm deadline is answered with a `Miss` outcome, mirroring
//! the engine's abort taxonomy, so callers can distinguish "too late" from
//! "wrong".
//!
//! ## Observability
//!
//! Besides the compact `Stats` record, the protocol carries a `Metrics`
//! op ([`RequestOp::Metrics`]) that returns the engine's full
//! [`rodain_db::MetricsSnapshot`] rendered as human-readable text, JSON,
//! or Prometheus exposition format ([`MetricsFormat`]) — suitable for a
//! scrape endpoint or an operator console. The metric catalog is
//! documented in the repository's `METRICS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
#[cfg(unix)]
mod event;
pub mod protocol;
mod server;

pub use client::Client;
pub use cluster::ClusterShards;
pub use protocol::{
    MetricsFormat, Outcome, ProtocolError, Request, RequestOp, Response, PROTOCOL_VERSION,
};
pub use server::{Backend, FrontEndConfig, Server, ServerHandle, ServerStats};
