//! Run every experiment in sequence, writing all CSVs.
//!
//! `cargo run -p rodain-bench --release --bin all_experiments [-- --quick]`

use rodain_bench::experiments::{
    cc_ablation, commit_path, commit_pipe, commit_tier, fig2_panel_a, fig2_panel_b, fig3,
    overload_limit, reservation, saturation, takeover, SweepOptions,
};
use rodain_bench::report::Table;

fn main() {
    let opts = SweepOptions::from_args();
    let started = std::time::Instant::now();
    let run = |name: &str, table: Table| {
        table.print();
        println!("csv: {:?}\n", table.write_csv(name).unwrap());
    };
    run("fig2a", fig2_panel_a(opts));
    run("fig2b", fig2_panel_b(opts));
    run("fig3a", fig3(0.0, opts));
    run("fig3b", fig3(0.2, opts));
    run("fig3c", fig3(0.8, opts));
    run("takeover", takeover(opts));
    run("saturation", saturation(opts));
    run("cc_ablation", cc_ablation(opts));
    run("commit_path", commit_path(opts));
    run("overload_limit", overload_limit(opts));
    run("reservation", reservation(opts));
    {
        // COMMITPIPE runs the real mirrored engine; include it here (it is
        // fast) but keep the regression gate in the standalone binary.
        let report = commit_pipe(opts);
        report.table().print();
        let dir = rodain_bench::report::out_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_COMMITPIPE.json");
        std::fs::write(&path, report.to_json()).unwrap();
        println!("json: {path:?}\n");
    }
    {
        // COMMITTIER also runs the real mirrored engine; the regression
        // gate stays in the standalone binary.
        let report = commit_tier(opts);
        report.table().print();
        let dir = rodain_bench::report::out_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_COMMITTIER.json");
        std::fs::write(&path, report.to_json()).unwrap();
        println!("json: {path:?}\n");
    }
    #[cfg(unix)]
    {
        // SATURATION runs both front-ends on the real server; the
        // regression gate stays in the standalone `c10k` binary.
        let report = rodain_bench::frontend::front_end_saturation(opts);
        report.table().print();
        let dir = rodain_bench::report::out_dir();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_SATURATION.json");
        std::fs::write(&path, report.to_json()).unwrap();
        println!("json: {path:?}\n");
    }
    // REALENGINE, SHARDSCALE and RECOVERY are deliberately NOT part of
    // the suite: they measure wall-clock behaviour and need an otherwise
    // idle machine. Run them standalone:
    // `cargo run -p rodain-bench --release --bin real_engine`
    // `cargo run -p rodain-bench --release --bin shard_scale`
    // `cargo run -p rodain-bench --release --bin recovery_bench`
    println!("all experiments finished in {:?}", started.elapsed());
}
