//! Property-based tests of the v2 wire protocol: any request/response —
//! including the tier byte, deferred flag and the deferred-commit
//! outcomes — round-trips losslessly, and truncating an encoded frame at
//! any point is rejected rather than misparsed.

use bytes::Bytes;
use proptest::prelude::*;
use rodain_db::DurabilityTier;
use rodain_server::{
    MetricsFormat, Outcome, ProtocolError, Request, RequestOp, Response, PROTOCOL_VERSION,
};
use rodain_store::{ObjectId, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-z0-9+-]{0,24}".prop_map(Value::Text),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::Record)
    })
}

fn tier_strategy() -> impl Strategy<Value = DurabilityTier> {
    prop_oneof![
        Just(DurabilityTier::Volatile),
        Just(DurabilityTier::MirrorAcked),
        Just(DurabilityTier::DiskFsynced),
    ]
}

fn op_strategy() -> impl Strategy<Value = RequestOp> {
    prop_oneof![
        any::<u64>().prop_map(|number| RequestOp::Translate { number }),
        (any::<u64>(), "[ -~]{0,40}")
            .prop_map(|(number, address)| RequestOp::Provision { number, address }),
        any::<u64>().prop_map(|oid| RequestOp::Get { oid: ObjectId(oid) }),
        (any::<u64>(), value_strategy()).prop_map(|(oid, value)| RequestOp::Put {
            oid: ObjectId(oid),
            value,
        }),
        Just(RequestOp::Stats),
        prop_oneof![
            Just(MetricsFormat::Text),
            Just(MetricsFormat::Json),
            Just(MetricsFormat::Prometheus),
        ]
        .prop_map(|format| RequestOp::Metrics { format }),
        Just(RequestOp::Checkpoint),
        Just(RequestOp::ClusterMap),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        any::<u32>(),
        tier_strategy(),
        any::<bool>(),
        op_strategy(),
    )
        .prop_map(|(id, deadline_ms, tier, deferred, op)| Request {
            id,
            deadline_ms,
            tier,
            deferred,
            op,
        })
}

fn outcome_strategy() -> impl Strategy<Value = Outcome> {
    prop_oneof![
        value_strategy().prop_map(Outcome::Ok),
        Just(Outcome::NotFound),
        Just(Outcome::MissDeadline),
        Just(Outcome::Overloaded),
        "[ -~]{0,60}".prop_map(Outcome::Failed),
        Just(Outcome::CommitPending),
        (tier_strategy(), any::<u64>(), value_strategy())
            .prop_map(|(tier, csn, value)| { Outcome::CommitDurable { tier, csn, value } }),
        any::<u64>().prop_map(|epoch| Outcome::WrongShard { epoch }),
    ]
}

proptest! {
    /// Every request — all ops × all tiers × both deferred flags —
    /// round-trips through encode/decode unchanged.
    #[test]
    fn request_roundtrip(request in request_strategy()) {
        let decoded = Request::decode(request.encode()).unwrap();
        prop_assert_eq!(decoded, request);
    }

    /// Every response, including the deferred-commit outcomes with their
    /// tier and CSN fields, round-trips unchanged.
    #[test]
    fn response_roundtrip(id in any::<u64>(), outcome in outcome_strategy()) {
        let response = Response { id, outcome };
        let decoded = Response::decode(response.encode()).unwrap();
        prop_assert_eq!(decoded, response);
    }

    /// Truncating an encoded request anywhere short of its full length is
    /// an error — never a silent misparse into some other request.
    #[test]
    fn truncated_requests_are_rejected(request in request_strategy(), cut in any::<prop::sample::Index>()) {
        let encoded = request.encode();
        let cut = cut.index(encoded.len());
        prop_assert!(Request::decode(encoded.slice(..cut)).is_err());
    }

    /// Same for responses.
    #[test]
    fn truncated_responses_are_rejected(
        id in any::<u64>(),
        outcome in outcome_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let encoded = Response { id, outcome }.encode();
        let cut = cut.index(encoded.len());
        prop_assert!(Response::decode(encoded.slice(..cut)).is_err());
    }

    /// A frame led by any byte other than the protocol version fails with
    /// `ProtocolError::Version` before anything else is inspected.
    #[test]
    fn foreign_versions_are_refused(
        version in any::<u8>().prop_map(|v| if v == PROTOCOL_VERSION { !v } else { v }),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut frame = vec![version];
        frame.extend_from_slice(&body);
        let frame = Bytes::from(frame);
        prop_assert_eq!(
            Request::decode(frame.clone()),
            Err(ProtocolError::Version { got: version })
        );
        prop_assert_eq!(
            Response::decode(frame),
            Err(ProtocolError::Version { got: version })
        );
    }
}
