//! The [`ShardedRodain`] facade: N independent engines behind one API.

use crate::router::ShardRouter;
use crate::twopc;
use crate::twopc::{CrashPoint, CrossReceipt, RecoveryReport, ShardOp};
use parking_lot::RwLock;
use rodain_db::{
    CommitFuture, CompletionHook, EngineStats, MirrorLossPolicy, Rodain, RodainBuilder, TxnAbort,
    TxnCtx, TxnError, TxnOptions, TxnReceipt,
};
use rodain_net::Transport;
use rodain_obs::MetricsSnapshot;
use rodain_occ::Protocol;
use rodain_store::{ObjectId, Store, Value};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-shard engine customization applied at build time.
type ShardHook = Box<dyn Fn(usize, RodainBuilder) -> RodainBuilder>;

/// Builder for a [`ShardedRodain`] cluster.
pub struct ShardedRodainBuilder {
    shards: usize,
    workers_per_shard: usize,
    protocol: Protocol,
    commit_gate_timeout: Option<Duration>,
    contingency_root: Option<PathBuf>,
    stores: Option<Vec<Arc<Store>>>,
    shard_hook: Option<ShardHook>,
}

impl ShardedRodainBuilder {
    fn new() -> Self {
        ShardedRodainBuilder {
            shards: 1,
            workers_per_shard: 2,
            protocol: Protocol::OccDati,
            commit_gate_timeout: None,
            contingency_root: None,
            stores: None,
            shard_hook: None,
        }
    }

    /// Number of partitions (default 1; at most [`crate::MAX_SHARDS`]).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Executor threads per shard engine (default 2).
    #[must_use]
    pub fn workers_per_shard(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers;
        self
    }

    /// Concurrency-control protocol for every shard (default OCC-DATI).
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Commit-gate timeout applied to every shard engine.
    #[must_use]
    pub fn commit_gate_timeout(mut self, timeout: Duration) -> Self {
        self.commit_gate_timeout = Some(timeout);
        self
    }

    /// Contingency mode for every shard: shard `i` group-commits its redo
    /// stream under `root/shard-<i>` (see [`ShardedRodain::shard_dir`]).
    #[must_use]
    pub fn contingency_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.contingency_root = Some(root.into());
        self
    }

    /// Start each shard from an existing store — e.g. stores recovered
    /// from the per-shard redo logs after a crash. Must supply exactly one
    /// store per shard.
    #[must_use]
    pub fn stores(mut self, stores: Vec<Arc<Store>>) -> Self {
        self.stores = Some(stores);
        self
    }

    /// Customize each shard's [`RodainBuilder`] before it is built — e.g.
    /// to install a fault-injecting or throttled log backend on one shard.
    /// Runs after every other builder option has been applied.
    #[must_use]
    pub fn shard_hook(
        mut self,
        hook: impl Fn(usize, RodainBuilder) -> RodainBuilder + 'static,
    ) -> Self {
        self.shard_hook = Some(Box::new(hook));
        self
    }

    /// Build and start every shard engine.
    pub fn build(self) -> io::Result<ShardedRodain> {
        if self.shards == 0 || self.shards > crate::MAX_SHARDS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "shard count {} outside 1..={}",
                    self.shards,
                    crate::MAX_SHARDS
                ),
            ));
        }
        if let Some(stores) = &self.stores {
            if stores.len() != self.shards {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "{} stores supplied for {} shards",
                        stores.len(),
                        self.shards
                    ),
                ));
            }
        }
        let router = ShardRouter::new(self.shards);
        let mut shards = Vec::with_capacity(self.shards);
        for i in 0..self.shards {
            let mut b = Rodain::builder()
                .protocol(self.protocol)
                .workers(self.workers_per_shard);
            if let Some(timeout) = self.commit_gate_timeout {
                b = b.commit_gate_timeout(timeout);
            }
            if let Some(stores) = &self.stores {
                b = b.store(Arc::clone(&stores[i]));
            }
            if let Some(root) = &self.contingency_root {
                b = b.contingency_log(ShardedRodain::shard_dir(root, i));
            }
            if let Some(hook) = &self.shard_hook {
                b = hook(i, b);
            }
            shards.push(RwLock::new(Some(Arc::new(b.build()?))));
        }
        Ok(ShardedRodain {
            router,
            shards,
            next_gid: AtomicU64::new(1),
        })
    }
}

/// A hash-partitioned cluster of independent [`Rodain`] engines.
///
/// Single-shard operations route and delegate (the fast path — no locks or
/// coordination beyond one shard-table read). Cross-shard transactions go
/// through [`ShardedRodain::execute_cross`]'s two-phase commit. Failover
/// is per shard: [`ShardedRodain::take_shard`] detaches a primary (its
/// mirror observes the link drop and takes over) and
/// [`ShardedRodain::install_shard`] seats the promoted successor, while
/// every other shard keeps committing undisturbed.
pub struct ShardedRodain {
    router: ShardRouter,
    shards: Vec<RwLock<Option<Arc<Rodain>>>>,
    next_gid: AtomicU64,
}

impl std::fmt::Debug for ShardedRodain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRodain")
            .field("shards", &self.shard_count())
            .finish_non_exhaustive()
    }
}

impl ShardedRodain {
    /// Start building a cluster.
    #[must_use]
    pub fn builder() -> ShardedRodainBuilder {
        ShardedRodainBuilder::new()
    }

    /// The directory shard `i` logs under when built with
    /// [`ShardedRodainBuilder::contingency_root`].
    #[must_use]
    pub fn shard_dir(root: impl AsRef<Path>, shard: usize) -> PathBuf {
        root.as_ref().join(format!("shard-{shard}"))
    }

    /// The partitioning function.
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of partitions.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `oid` lives on.
    #[must_use]
    pub fn shard_of(&self, oid: ObjectId) -> usize {
        self.router.route(oid)
    }

    /// Shard `i`'s engine (`None` while detached for failover).
    #[must_use]
    pub fn engine(&self, shard: usize) -> Option<Arc<Rodain>> {
        self.shards.get(shard)?.read().clone()
    }

    /// The engine owning `oid` (`None` while its shard is detached).
    #[must_use]
    pub fn engine_for(&self, oid: ObjectId) -> Option<Arc<Rodain>> {
        self.engine(self.router.route(oid))
    }

    /// Load an object during initial population (routes to its shard;
    /// silently skipped while that shard is detached).
    pub fn load_initial(&self, oid: ObjectId, value: Value) {
        if let Some(engine) = self.engine_for(oid) {
            engine.load_initial(oid, value);
        }
    }

    /// Read an object's committed value outside any transaction.
    #[must_use]
    pub fn get(&self, oid: ObjectId) -> Option<Value> {
        self.engine_for(oid)?.get(oid)
    }

    /// Submit a transaction whose accesses all live on `anchor`'s shard —
    /// the single-shard fast path: route, then delegate to that engine's
    /// own scheduler and commit gate.
    pub fn submit_on<F>(&self, anchor: ObjectId, opts: TxnOptions, closure: F) -> CommitFuture
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        match self.engine_for(anchor) {
            Some(engine) => engine.submit(opts, closure),
            None => CommitFuture::ready(Err(TxnError::Shutdown)),
        }
    }

    /// [`ShardedRodain::submit_on`] with a [`CompletionHook`] fired when
    /// the returned future resolves (see [`Rodain::submit_hooked`]). The
    /// hook fires even when the anchor routes to a detached shard — the
    /// ready error is in the future before the hook runs — so an
    /// event-loop caller never leaks a pending entry.
    pub fn submit_on_hooked<F>(
        &self,
        anchor: ObjectId,
        opts: TxnOptions,
        closure: F,
        hook: CompletionHook,
    ) -> CommitFuture
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        match self.engine_for(anchor) {
            Some(engine) => engine.submit_hooked(opts, closure, hook),
            None => {
                let future = CommitFuture::ready(Err(TxnError::Shutdown));
                hook();
                future
            }
        }
    }

    /// Execute a single-shard transaction and wait for its outcome.
    pub fn execute_on<F>(
        &self,
        anchor: ObjectId,
        opts: TxnOptions,
        closure: F,
    ) -> Result<TxnReceipt, TxnError>
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        self.submit_on(anchor, opts, closure).wait()
    }

    /// Execute a cross-shard transaction atomically via two-phase commit
    /// (see `DESIGN.md` §11 and [`ShardOp`]). Operations that all land on
    /// one shard skip the protocol and commit as a plain local
    /// transaction.
    pub fn execute_cross(
        &self,
        opts: TxnOptions,
        ops: Vec<ShardOp>,
    ) -> Result<CrossReceipt, TxnError> {
        twopc::execute_cross(self, opts, ops, CrashPoint::None)
    }

    /// [`ShardedRodain::execute_cross`] with an injected coordinator crash
    /// — the test hook behind the torn-2PC recovery tests. The phases
    /// after the crash point are skipped, leaving the cluster exactly as a
    /// real coordinator failure would.
    pub fn execute_cross_with_crash(
        &self,
        opts: TxnOptions,
        ops: Vec<ShardOp>,
        crash: CrashPoint,
    ) -> Result<CrossReceipt, TxnError> {
        twopc::execute_cross(self, opts, ops, crash)
    }

    /// Replay unresolved 2PC bookkeeping after a restart: intents whose
    /// decision record exists roll forward, intents without one are
    /// presumed aborted, and fully applied transactions have their
    /// leftover markers and decisions cleaned up. Call before serving new
    /// traffic on a recovered cluster.
    pub fn resolve_pending(&self) -> Result<RecoveryReport, TxnError> {
        twopc::resolve_pending(self)
    }

    /// Aggregate statistics across every attached shard.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for shard in 0..self.shard_count() {
            if let Some(engine) = self.engine(shard) {
                total.merge(&engine.stats());
            }
        }
        total
    }

    /// Per-shard statistics (detached shards reported as `None`).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<Option<EngineStats>> {
        (0..self.shard_count())
            .map(|i| self.engine(i).map(|e| e.stats()))
            .collect()
    }

    /// One merged metrics snapshot: every shard's metrics labelled
    /// `shard="<i>"` then folded together (see `METRICS.md`).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut merged = MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            events: Vec::new(),
        };
        for shard in 0..self.shard_count() {
            if let Some(engine) = self.engine(shard) {
                merged.merge(&engine.metrics().with_label("shard", &shard.to_string()));
            }
        }
        merged
    }

    /// Each shard's replication mode (`None` while detached).
    #[must_use]
    pub fn replication_modes(&self) -> Vec<Option<rodain_db::ReplicationMode>> {
        (0..self.shard_count())
            .map(|i| self.engine(i).map(|e| e.replication_mode()))
            .collect()
    }

    /// Attach a mirror to shard `shard` (blocks through the snapshot
    /// handshake, exactly like [`Rodain::attach_mirror`]).
    pub fn attach_mirror(
        &self,
        shard: usize,
        transport: Arc<dyn Transport>,
        policy: MirrorLossPolicy,
    ) -> io::Result<()> {
        match self.engine(shard) {
            Some(engine) => engine.attach_mirror(transport, policy),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("shard {shard} is detached"),
            )),
        }
    }

    /// Detach shard `shard`'s engine for failover (or a chaos kill).
    /// Dropping the returned handle shuts the engine down; a mirror
    /// attached to it observes the link drop and takes over. Other shards
    /// are untouched.
    #[must_use]
    pub fn take_shard(&self, shard: usize) -> Option<Arc<Rodain>> {
        self.shards.get(shard)?.write().take()
    }

    /// Seat a (promoted or rebuilt) engine as shard `shard`, replacing any
    /// current occupant.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn install_shard(&self, shard: usize, engine: Arc<Rodain>) {
        *self.shards[shard].write() = Some(engine);
    }

    /// Allocate a cross-shard transaction group id. Ids are unique within
    /// this facade; a networked coordinator must scope them further (the
    /// cluster layer prefixes the coordinator shard into the high bits).
    pub fn alloc_gid(&self) -> u64 {
        self.next_gid.fetch_add(1, Ordering::Relaxed)
    }

    /// Keep the gid allocator ahead of ids observed during recovery.
    pub fn note_gid_seen(&self, gid: u64) {
        self.next_gid.fetch_max(gid + 1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(shards: usize) -> ShardedRodain {
        ShardedRodain::builder()
            .shards(shards)
            .workers_per_shard(1)
            .build()
            .unwrap()
    }

    #[test]
    fn fast_path_routes_and_commits() {
        let db = cluster(4);
        for oid in 0..200u64 {
            db.load_initial(ObjectId(oid), Value::Int(0));
        }
        for oid in 0..200u64 {
            db.execute_on(ObjectId(oid), TxnOptions::soft_ms(5_000), move |ctx| {
                let v = ctx.read(ObjectId(oid))?.unwrap().as_int().unwrap();
                ctx.write(ObjectId(oid), Value::Int(v + 1))?;
                Ok(None)
            })
            .unwrap();
        }
        assert_eq!(db.stats().committed, 200);
        // Every shard saw a slice of the key space.
        for (shard, stats) in db.shard_stats().into_iter().enumerate() {
            let stats = stats.unwrap();
            assert!(stats.committed > 0, "shard {shard} committed nothing");
        }
        for oid in 0..200u64 {
            assert_eq!(db.get(ObjectId(oid)), Some(Value::Int(1)));
        }
    }

    #[test]
    fn merged_metrics_carry_shard_labels() {
        let db = cluster(2);
        db.load_initial(ObjectId(1), Value::Int(0));
        db.execute_on(ObjectId(1), TxnOptions::soft_ms(5_000), |ctx| {
            ctx.write(ObjectId(1), Value::Int(1))?;
            Ok(None)
        })
        .unwrap();
        let snap = db.metrics();
        let home = db.shard_of(ObjectId(1));
        assert_eq!(
            snap.counter(&format!("txn_committed_total{{shard=\"{home}\"}}")),
            Some(1)
        );
        let other = 1 - home;
        assert_eq!(
            snap.counter(&format!("txn_committed_total{{shard=\"{other}\"}}")),
            Some(0)
        );
    }

    #[test]
    fn detached_shard_fails_fast_and_reinstall_recovers() {
        let db = cluster(2);
        db.load_initial(ObjectId(3), Value::Int(9));
        let victim = db.shard_of(ObjectId(3));
        let taken = db.take_shard(victim).unwrap();
        let store = taken.store();
        drop(taken);
        assert_eq!(db.get(ObjectId(3)), None);
        assert_eq!(
            db.execute_on(ObjectId(3), TxnOptions::soft_ms(100), |_| Ok(None)),
            Err(TxnError::Shutdown)
        );
        assert_eq!(db.replication_modes()[victim], None);
        // Promote a successor over the surviving store copy.
        let successor = Rodain::builder().workers(1).store(store).build().unwrap();
        db.install_shard(victim, Arc::new(successor));
        assert_eq!(db.get(ObjectId(3)), Some(Value::Int(9)));
        db.execute_on(ObjectId(3), TxnOptions::soft_ms(5_000), |ctx| {
            ctx.write(ObjectId(3), Value::Int(10))?;
            Ok(None)
        })
        .unwrap();
        assert_eq!(db.get(ObjectId(3)), Some(Value::Int(10)));
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert!(ShardedRodain::builder().shards(0).build().is_err());
        let err = ShardedRodain::builder()
            .shards(2)
            .stores(vec![Arc::new(Store::new())])
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
