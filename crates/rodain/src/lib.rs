//! # rodain — real-time main-memory database with log-shipped hot stand-by
//!
//! A from-scratch Rust implementation of the RODAIN architecture
//! (Niklander & Raatikainen, *Using Logs to Increase Availability in
//! Real-Time Main-Memory Database*): a telecom-grade real-time main-memory
//! DBMS whose availability comes from a **Mirror Node** kept current by
//! shipping transaction redo logs — taking the disk write off the commit
//! critical path and replacing it with one message round-trip.
//!
//! This umbrella crate re-exports the whole system:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`obs`] | `rodain-obs` | observability: histograms, counters, gauges, event trace, renderers |
//! | [`store`] | `rodain-store` | main-memory object store, deferred-write workspaces, snapshots |
//! | [`occ`] | `rodain-occ` | OCC-DATI and its baselines (OCC-TI, OCC-DA, OCC-BC, 2PL-HP) |
//! | [`sched`] | `rodain-sched` | modified EDF, non-real-time reservation, overload manager |
//! | [`log`] | `rodain-log` | redo records, codec, reorder buffer, segmented disk log, group commit, recovery |
//! | [`net`] | `rodain-net` | in-process / TCP / failure-injection transports |
//! | [`node`] | `rodain-node` | wire protocol, roles, watchdog, the Mirror Node service |
//! | [`db`] | `rodain-db` | the engine: [`db::Rodain`] |
//! | [`server`] | `rodain-server` | the User Request Interpreter: TCP front-end + client |
//! | [`sim`] | `rodain-sim` | deterministic simulation regenerating the paper's figures |
//! | [`workload`] | `rodain-workload` | number-translation workloads, traces |
//! | [`shard`] | `rodain-shard` | hash-partitioned multi-engine cluster: routing, cross-shard 2PC, per-shard failover |
//! | [`cluster`] | `rodain-cluster` | multi-node placement: shard maps, networked 2PC, online shard migration |
//!
//! See the repository's `README.md` for a tour and `examples/` for runnable
//! programs.

#![forbid(unsafe_code)]

pub use rodain_cluster as cluster;
pub use rodain_db as db;
pub use rodain_log as log;
pub use rodain_net as net;
pub use rodain_node as node;
pub use rodain_obs as obs;
pub use rodain_occ as occ;
pub use rodain_sched as sched;
pub use rodain_server as server;
pub use rodain_shard as shard;
pub use rodain_sim as sim;
pub use rodain_store as store;
pub use rodain_workload as workload;

pub use rodain_db::{
    CommitFuture, DurabilityTier, Rodain, RodainBuilder, TxnCtx, TxnError, TxnOptions, TxnReceipt,
};
pub use rodain_store::{ObjectId, Ts, TxnId, Value};
