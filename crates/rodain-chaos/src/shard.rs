//! Shard-kill chaos: one partition of a [`ShardedRodain`] cluster dies
//! and fails over while the survivors keep serving.
//!
//! The single-pair harness ([`crate::ChaosHarness`]) checks the paper's
//! availability protocol for one primary/mirror pair; this module checks
//! the sharding layer's claim that the protocol composes: killing shard
//! *i*'s primary must cost exactly the transactions routed to shard *i*
//! during its outage window — never a commit on any other shard, and
//! never an increment the dead shard had already acknowledged (the
//! mirror's copy carries them through promotion).
//!
//! Determinism: the driver is single-threaded and the kill, the outage
//! window and the reinstall all happen synchronously between commit
//! attempts, so the set of refused commits is a pure function of the
//! victim choice — which is drawn from the seed. The same seed therefore
//! yields a byte-identical [`ShardKillVerdict::render`], and a failing
//! run reproduces with `CHAOS_SEED=<seed> cargo test -p rodain-chaos`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rodain_db::{MirrorLossPolicy, Rodain, TxnError, TxnOptions};
use rodain_net::InProcTransport;
use rodain_node::{MirrorConfig, MirrorExit, MirrorNode};
use rodain_shard::ShardedRodain;
use rodain_store::{ObjectId, Store, Value};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for a shard-kill run.
#[derive(Clone, Debug)]
pub struct ShardKillConfig {
    /// Partitions in the cluster.
    pub shards: usize,
    /// Objects in the increment workload (round-robin targets, spread
    /// over every shard by the router).
    pub objects: u64,
    /// Commit attempts before the kill.
    pub before: u64,
    /// Commit attempts while the victim shard is detached.
    pub outage: u64,
    /// Commit attempts after the promoted successor is installed.
    pub after: u64,
    /// Executor threads per shard engine.
    pub workers_per_shard: usize,
    /// Commit-gate timeout for every shard engine.
    pub commit_gate_timeout: Duration,
}

impl Default for ShardKillConfig {
    fn default() -> Self {
        ShardKillConfig {
            shards: 4,
            objects: 16,
            before: 16,
            outage: 16,
            after: 16,
            workers_per_shard: 2,
            commit_gate_timeout: Duration::from_millis(300),
        }
    }
}

/// Outcome of one shard-kill run.
#[derive(Clone, Debug)]
pub struct ShardKillVerdict {
    /// Seed the victim was drawn from.
    pub seed: u64,
    /// The shard that was killed.
    pub victim: usize,
    /// Deterministic per-commit / per-event log of the run.
    pub trace: Vec<String>,
    /// Invariant violations (empty on a passing run).
    pub violations: Vec<String>,
    /// Commits the cluster acknowledged.
    pub acked: u64,
    /// Commits the driver attempted.
    pub attempts: u64,
    /// Commits refused because they routed to the detached shard.
    pub refused: u64,
}

impl ShardKillVerdict {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Stable textual form (no wall-clock data): byte-identical across
    /// runs of the same seed and config.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        if self.violations.is_empty() {
            out.push_str("violations: none\n");
        } else {
            for violation in &self.violations {
                out.push_str("VIOLATION: ");
                out.push_str(violation);
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "seed {}: victim shard {}, acked {}/{} attempts ({} refused)\n",
            self.seed, self.victim, self.acked, self.attempts, self.refused
        ));
        out
    }
}

/// Drives a sharded cluster through a seeded single-shard kill.
pub struct ShardKillHarness {
    config: ShardKillConfig,
}

impl ShardKillHarness {
    /// A harness with the given knobs.
    #[must_use]
    pub fn new(config: ShardKillConfig) -> ShardKillHarness {
        ShardKillHarness { config }
    }

    /// Execute one run: build the cluster, attach a mirror to the
    /// seed-chosen victim shard, drive increments through kill → outage →
    /// promotion, then check every invariant at quiescence.
    #[must_use]
    pub fn run(&self, seed: u64) -> ShardKillVerdict {
        Runner::new(self.config.clone(), seed).run()
    }
}

fn mirror_node_config() -> MirrorConfig {
    MirrorConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        peer_timeout: Duration::from_millis(100),
        suspect_rounds: 3,
        snapshot_dir: None,
        takeover_workers: 2,
    }
}

struct Runner {
    config: ShardKillConfig,
    seed: u64,
    victim: usize,
    cluster: ShardedRodain,
    /// Per-object acked / attempted increment counts (the counting
    /// argument from [`crate::invariants`], inlined because the objects
    /// span several stores).
    acked: Vec<u64>,
    attempts: Vec<u64>,
    refused: u64,
    commit_no: u64,
    trace: Vec<String>,
    violations: Vec<String>,
}

impl Runner {
    fn new(config: ShardKillConfig, seed: u64) -> Runner {
        let mut rng = SmallRng::seed_from_u64(seed);
        let victim = rng.gen_range(0..config.shards);
        let cluster = ShardedRodain::builder()
            .shards(config.shards)
            .workers_per_shard(config.workers_per_shard)
            .commit_gate_timeout(config.commit_gate_timeout)
            .build()
            .expect("build sharded cluster");
        let objects = config.objects;
        let mut runner = Runner {
            config,
            seed,
            victim,
            cluster,
            acked: vec![0; objects as usize],
            attempts: vec![0; objects as usize],
            refused: 0,
            commit_no: 0,
            trace: Vec::new(),
            violations: Vec::new(),
        };
        for i in 0..objects {
            runner.cluster.load_initial(ObjectId(i), Value::Int(0));
        }
        runner
    }

    fn run(mut self) -> ShardKillVerdict {
        self.trace.push(format!(
            "run: {} shards, {} objects, kill shard {} after {} commits \
             ({} during outage, {} after reinstall)",
            self.config.shards,
            self.config.objects,
            self.victim,
            self.config.before,
            self.config.outage,
            self.config.after,
        ));

        // Phase 0: mirror the victim shard, exactly as every shard would
        // be mirrored in production — one pair suffices because only the
        // victim dies.
        let (primary_side, mirror_side) = InProcTransport::pair();
        let mirror_store = Arc::new(Store::new());
        let mut mirror = MirrorNode::new(
            Arc::clone(&mirror_store),
            Arc::new(mirror_side),
            None,
            mirror_node_config(),
        );
        let mirror_thread = std::thread::spawn(move || {
            mirror.join().expect("mirror join handshake");
            mirror.run()
        });
        self.cluster
            .attach_mirror(
                self.victim,
                Arc::new(primary_side),
                MirrorLossPolicy::ContinueVolatile,
            )
            .expect("attach mirror to victim shard");

        // Phase 1: healthy cluster — every commit must ack.
        for _ in 0..self.config.before {
            self.attempt_commit(false);
        }

        // The kill: detach the victim's engine and drop it. The mirror
        // observes the link close and exits ready for promotion, carrying
        // every increment the dead shard acknowledged.
        let taken = self
            .cluster
            .take_shard(self.victim)
            .expect("victim engine present");
        drop(taken);
        let (exit, _report) = mirror_thread.join().expect("mirror thread");
        if exit != MirrorExit::PrimaryFailed {
            self.violations
                .push(format!("victim's mirror exited as {exit:?} after the kill"));
        }
        self.trace.push(format!(
            "kill: shard {} detached, mirror promoted",
            self.victim
        ));

        // Phase 2: outage — commits routed to the victim must fail fast
        // with Shutdown; every other shard must keep acking.
        for _ in 0..self.config.outage {
            self.attempt_commit(true);
        }

        // The reinstall: seat a successor engine over the mirror's copy.
        let successor = Rodain::builder()
            .workers(self.config.workers_per_shard)
            .commit_gate_timeout(self.config.commit_gate_timeout)
            .store(mirror_store)
            .build()
            .expect("promote mirror store");
        self.cluster.install_shard(self.victim, Arc::new(successor));
        self.trace
            .push(format!("reinstall: shard {} serving again", self.victim));

        // Phase 3: whole again — every commit must ack.
        for _ in 0..self.config.after {
            self.attempt_commit(false);
        }

        self.quiesce();
        self.finish()
    }

    fn attempt_commit(&mut self, victim_down: bool) {
        self.commit_no += 1;
        let k = self.commit_no;
        let oid = ObjectId((k - 1) % self.config.objects);
        let shard = self.cluster.shard_of(oid);
        let on_victim = shard == self.victim;
        self.attempts[oid.0 as usize] += 1;
        let result = self
            .cluster
            .execute_on(oid, TxnOptions::soft_ms(30_000), move |ctx| {
                let v = ctx.read(oid)?.expect("workload object exists");
                let v = v.as_int().expect("workload object is an integer");
                ctx.write(oid, Value::Int(v + 1))?;
                Ok(None)
            });
        match result {
            Ok(_) => {
                self.acked[oid.0 as usize] += 1;
                self.trace.push(format!(
                    "commit {k}: acked (object {} shard {shard})",
                    oid.0
                ));
                if victim_down && on_victim {
                    self.violations.push(format!(
                        "commit {k}: detached shard {shard} acknowledged a commit"
                    ));
                }
            }
            Err(TxnError::Shutdown) if victim_down && on_victim => {
                self.refused += 1;
                self.trace.push(format!(
                    "commit {k}: refused (object {} on detached shard {shard})",
                    oid.0
                ));
            }
            Err(e) => {
                self.trace
                    .push(format!("commit {k}: failed on object {} ({e})", oid.0));
                self.violations.push(format!(
                    "commit {k}: shard {shard} failed a commit it had to serve ({e})"
                ));
            }
        }
    }

    fn quiesce(&mut self) {
        // No acked increment lost, no phantom updates — across every
        // shard, including the promoted successor whose store is the
        // mirror's copy of the dead primary.
        for i in 0..self.config.objects {
            let oid = ObjectId(i);
            let (acked, attempts) = (self.acked[i as usize], self.attempts[i as usize]);
            match self.cluster.get(oid) {
                Some(Value::Int(v)) => {
                    if v < 0 || (v as u64) < acked {
                        self.violations.push(format!(
                            "object {i} lost acked commits (stored {v}, acked {acked})"
                        ));
                    }
                    if v > 0 && v as u64 > attempts {
                        self.violations.push(format!(
                            "object {i} has phantom updates (stored {v}, attempted {attempts})"
                        ));
                    }
                }
                Some(other) => self
                    .violations
                    .push(format!("object {i} holds non-integer value {other:?}")),
                None => self
                    .violations
                    .push(format!("object {i} missing from the cluster")),
            }
        }

        // Every shard is seated and every shard that owns workload
        // objects committed some of them — the survivors never stalled.
        let owners: std::collections::BTreeSet<usize> = (0..self.config.objects)
            .map(|i| self.cluster.shard_of(ObjectId(i)))
            .collect();
        for (shard, stats) in self.cluster.shard_stats().into_iter().enumerate() {
            match stats {
                Some(stats) => {
                    if owners.contains(&shard) && stats.committed == 0 {
                        self.violations
                            .push(format!("shard {shard} committed nothing"));
                    }
                }
                None => self
                    .violations
                    .push(format!("shard {shard} still detached at quiescence")),
            }
        }

        self.trace.push(format!(
            "quiesce: acked {}/{} ({} refused on the detached shard)",
            self.acked.iter().sum::<u64>(),
            self.attempts.iter().sum::<u64>(),
            self.refused
        ));
    }

    fn finish(self) -> ShardKillVerdict {
        ShardKillVerdict {
            seed: self.seed,
            victim: self.victim,
            trace: self.trace,
            violations: self.violations,
            acked: self.acked.iter().sum(),
            attempts: self.attempts.iter().sum(),
            refused: self.refused,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ShardKillConfig {
        ShardKillConfig {
            shards: 2,
            objects: 16,
            before: 6,
            outage: 16,
            after: 6,
            workers_per_shard: 1,
            ..ShardKillConfig::default()
        }
    }

    #[test]
    fn kill_costs_only_the_victims_outage_window() {
        let verdict = ShardKillHarness::new(small_config()).run(11);
        assert!(verdict.passed(), "{}", verdict.render());
        assert_eq!(verdict.acked + verdict.refused, verdict.attempts);
        assert!(verdict.refused > 0, "outage window refused nothing");
        assert!(verdict.victim < 2);
    }

    #[test]
    fn same_seed_same_verdict() {
        let a = ShardKillHarness::new(small_config()).run(5);
        let b = ShardKillHarness::new(small_config()).run(5);
        assert!(a.passed(), "{}", a.render());
        assert_eq!(a.render(), b.render());
    }
}
