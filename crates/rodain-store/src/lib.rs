//! # rodain-store — main-memory object store
//!
//! The storage substrate of the RODAIN real-time main-memory database
//! (Niklander & Raatikainen, *Using Logs to Increase Availability in
//! Real-Time Main-Memory Database*).
//!
//! The store keeps every data object in main memory, sharded across a set of
//! reader-writer locks for concurrent access by transaction executor
//! threads. Two design points come straight from the paper:
//!
//! * **Deferred write.** A transaction never touches the shared database
//!   during its read phase. All modifications go to a private
//!   [`Workspace`]; an aborted transaction simply drops its workspace — no
//!   rollback, no undo logging. Only after the concurrency controller
//!   accepts the transaction are the after-images installed.
//! * **Versioned objects.** Each object carries the commit timestamp of its
//!   last writer (`wts`) and the largest commit timestamp of any reader
//!   (`rts`), which the optimistic validators in `rodain-occ` use to adjust
//!   serialization order.
//!
//! The store also supports whole-database [`Snapshot`]s, used by the mirror
//! node when a recovered node rejoins and must be brought up to date before
//! the log stream can take over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fxhash;
mod object;
mod snapshot;
mod stats;
mod store;
mod types;
mod workspace;

pub use error::StoreError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use object::VersionedObject;
pub use snapshot::Snapshot;
pub use stats::StoreStats;
pub use store::{Store, DEFAULT_SHARDS};
pub use types::{ObjectId, Ts, TxnId, Value};
pub use workspace::{ReadObservation, Workspace};
