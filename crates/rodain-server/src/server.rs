//! The TCP front-end.
//!
//! Two front-end architectures share this module's request plumbing:
//!
//! * the **event-driven** front-end (`event.rs`, DESIGN.md §17) — one
//!   loop thread multiplexing every client socket through a
//!   [`rodain_net::Poller`], a fixed worker pool executing decoded
//!   requests, out-of-order id-correlated responses, and end-to-end
//!   backpressure. This is what [`Server::start`] runs on unix.
//! * the **thread-per-connection** front-end ([`Server::start_threaded`])
//!   — one reader + one writer thread per connection. Kept as the
//!   baseline for the SATURATION experiment and as the fallback on
//!   platforms without the readiness poller.

use crate::cluster::ClusterShards;
use crate::protocol::{
    read_frame, write_frame, MetricsFormat, Outcome, Request, RequestOp, Response,
};
use bytes::BufMut;
use crossbeam::channel::{unbounded, Receiver, Select, Sender};
use rodain_db::{
    CommitFuture, CompletionHook, DurabilityTier, EngineStats, MetricsSnapshot, Rodain, TxnAbort,
    TxnCtx, TxnError, TxnOptions, TxnReceipt,
};
use rodain_obs::{Counter, Gauge, Histogram, Recorder};
use rodain_shard::ShardedRodain;
use rodain_store::{ObjectId, Value};
use rodain_workload::NumberTranslationDb;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monotone request counters.
#[derive(Default)]
pub(crate) struct StatsInner {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) ok: AtomicU64,
    pub(crate) not_found: AtomicU64,
    pub(crate) miss_deadline: AtomicU64,
    pub(crate) overloaded: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) redirected: AtomicU64,
    pub(crate) accept_errors: AtomicU64,
    pub(crate) replies_dropped: AtomicU64,
    pub(crate) backpressure_pauses: AtomicU64,
}

/// Snapshot of the front-end's request counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests received.
    pub requests: u64,
    /// Requests answered `Ok`.
    pub ok: u64,
    /// Requests answered `NotFound`.
    pub not_found: u64,
    /// Requests that missed their deadline.
    pub miss_deadline: u64,
    /// Requests rejected by the overload manager or the front-end's
    /// global in-flight admission gate.
    pub overloaded: u64,
    /// Requests that failed for any other reason.
    pub failed: u64,
    /// Requests answered `WrongShard` (cluster nodes only).
    pub redirected: u64,
    /// Transient `accept(2)` failures survived by backing off.
    pub accept_errors: u64,
    /// Responses that could not be delivered because the connection died
    /// first (queued frames dropped at teardown, plus commits resolving
    /// after their connection closed).
    pub replies_dropped: u64,
    /// Times a connection's read interest was withdrawn because it hit
    /// its in-flight cap or its reply queue filled (event-driven mode).
    pub backpressure_pauses: u64,
}

/// Tuning knobs for the event-driven front-end ([`Server::start_with`]).
///
/// The backpressure story is end-to-end: a connection that exceeds
/// `max_inflight_per_conn` outstanding requests — or whose reply queue
/// backs up past `reply_queue_cap` because the peer stops reading — is
/// removed from the read interest set until it drains, which in turn
/// fills the kernel receive buffer and stalls the sender via TCP flow
/// control. Above `max_global_inflight` outstanding requests across all
/// connections, new frames are answered [`Outcome::Overloaded`] before
/// any decode work, complementing the engine's EDF admission control.
#[derive(Clone, Copy, Debug)]
pub struct FrontEndConfig {
    /// Worker threads executing decoded requests. `0` means
    /// `min(available cores, 16)`.
    pub workers: usize,
    /// Per-connection cap on outstanding requests before the connection
    /// is paused.
    pub max_inflight_per_conn: usize,
    /// Per-connection cap on undelivered response frames before the
    /// connection is paused.
    pub reply_queue_cap: usize,
    /// Global cap on outstanding requests; above it new frames are
    /// answered `Overloaded` without decoding.
    pub max_global_inflight: usize,
}

impl Default for FrontEndConfig {
    fn default() -> FrontEndConfig {
        FrontEndConfig {
            workers: 0,
            max_inflight_per_conn: 128,
            reply_queue_cap: 256,
            max_global_inflight: 16 * 1024,
        }
    }
}

impl FrontEndConfig {
    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .min(16)
    }
}

/// The front-end's own instruments, registered on a server-owned
/// [`Recorder`] and merged into every `Metrics` op response (rows in
/// METRICS.md).
pub(crate) struct FrontEndMetrics {
    pub(crate) recorder: Recorder,
    pub(crate) connections: Gauge,
    pub(crate) inflight: Gauge,
    pub(crate) tick: Histogram,
    pub(crate) read_to_dispatch: Histogram,
    pub(crate) backpressure_pauses: Counter,
    pub(crate) replies_dropped: Counter,
    pub(crate) accept_errors: Counter,
    pub(crate) overload_rejects: Counter,
}

impl FrontEndMetrics {
    pub(crate) fn new() -> FrontEndMetrics {
        let recorder = Recorder::new();
        FrontEndMetrics {
            connections: recorder.gauge("server_connections"),
            inflight: recorder.gauge("server_inflight_requests"),
            tick: recorder.histogram("server_event_loop_tick_ns"),
            read_to_dispatch: recorder.histogram("server_read_to_dispatch_ns"),
            backpressure_pauses: recorder.counter("server_backpressure_pauses_total"),
            replies_dropped: recorder.counter("server_replies_dropped_total"),
            accept_errors: recorder.counter("server_accept_errors_total"),
            overload_rejects: recorder.counter("server_overload_rejects_total"),
            recorder,
        }
    }
}

/// What answers the front-end's transactions: one engine, or a
/// hash-partitioned cluster where each request routes to the shard that
/// owns its anchor object.
#[derive(Clone)]
pub enum Backend {
    /// A single engine — the paper's one-node database.
    Single(Arc<Rodain>),
    /// A sharded cluster; single-shard requests take the fast path to
    /// their owning engine.
    Sharded(Arc<ShardedRodain>),
    /// One node of a multi-process cluster: only locally-owned shards
    /// are served; anchors routing elsewhere are answered
    /// `WrongShard { epoch }` so the client refetches the shard map.
    Cluster(Arc<ClusterShards>),
}

impl Backend {
    /// Submit a transaction anchored at `anchor` (the object the request
    /// addresses; ignored by a single engine). When `hook` is set it
    /// fires after the outcome reaches the returned future — the
    /// event-driven front-end's completion signal.
    fn submit_hooked<F>(
        &self,
        anchor: ObjectId,
        opts: TxnOptions,
        closure: F,
        hook: Option<CompletionHook>,
    ) -> CommitFuture
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        match (self, hook) {
            (Backend::Single(db), None) => db.submit(opts, closure),
            (Backend::Single(db), Some(hook)) => db.submit_hooked(opts, closure, hook),
            (Backend::Sharded(cluster), None) => cluster.submit_on(anchor, opts, closure),
            (Backend::Sharded(cluster), Some(hook)) => {
                cluster.submit_on_hooked(anchor, opts, closure, hook)
            }
            (Backend::Cluster(node), None) => node.local().submit_on(anchor, opts, closure),
            (Backend::Cluster(node), Some(hook)) => {
                node.local().submit_on_hooked(anchor, opts, closure, hook)
            }
        }
    }

    /// Engine statistics — cluster-wide totals when sharded.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        match self {
            Backend::Single(db) => db.stats(),
            Backend::Sharded(cluster) => cluster.stats(),
            Backend::Cluster(node) => node.local().stats(),
        }
    }

    /// Metrics snapshot — per-shard labelled and merged when sharded.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        match self {
            Backend::Single(db) => db.metrics(),
            Backend::Sharded(cluster) => cluster.metrics(),
            Backend::Cluster(node) => node.metrics(),
        }
    }

    /// Force a checkpoint now (the `Checkpoint` wire op). A sharded
    /// cluster checkpoints every live shard with its own configured
    /// policy; the returned path is the last shard's snapshot file.
    /// Fails when no engine has checkpointing configured
    /// ([`rodain_db::RodainBuilder::checkpoints`]).
    pub fn force_checkpoint(&self) -> std::io::Result<std::path::PathBuf> {
        let sharded = match self {
            Backend::Single(db) => return db.force_checkpoint(),
            Backend::Sharded(cluster) => cluster,
            Backend::Cluster(node) => node.local(),
        };
        let mut last = None;
        for shard in 0..sharded.shard_count() {
            if let Some(engine) = sharded.engine(shard) {
                last = Some(engine.force_checkpoint()?);
            }
        }
        last.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "checkpointing not configured on any shard",
            )
        })
    }
}

/// The User Request Interpreter: accepts connections and maps requests onto
/// engine transactions. Requests on one connection may be pipelined and
/// execute out of order; responses are correlated by request id.
pub struct Server {
    pub(crate) backend: Backend,
    pub(crate) schema: NumberTranslationDb,
    pub(crate) metrics: Arc<FrontEndMetrics>,
}

/// Handle to a running server: address, stats, shutdown.
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) stats: Arc<StatsInner>,
    pub(crate) threads: Vec<std::thread::JoinHandle<()>>,
    /// Wakes the event loop out of a blocked wait so it notices the
    /// shutdown flag (event-driven mode only).
    #[cfg(unix)]
    pub(crate) waker: Option<Arc<rodain_net::Waker>>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request-counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            ok: self.stats.ok.load(Ordering::Relaxed),
            not_found: self.stats.not_found.load(Ordering::Relaxed),
            miss_deadline: self.stats.miss_deadline.load(Ordering::Relaxed),
            overloaded: self.stats.overloaded.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            redirected: self.stats.redirected.load(Ordering::Relaxed),
            accept_errors: self.stats.accept_errors.load(Ordering::Relaxed),
            replies_dropped: self.stats.replies_dropped.load(Ordering::Relaxed),
            backpressure_pauses: self.stats.backpressure_pauses.load(Ordering::Relaxed),
        }
    }

    /// Stop the front-end and join its threads. In threaded mode existing
    /// connections drain naturally (clients see EOF on their next read);
    /// in event-driven mode every connection is closed.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        #[cfg(unix)]
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

impl Server {
    /// Create a front-end over `db` serving the number-translation schema
    /// `schema` (generic `Get`/`Put` work regardless).
    #[must_use]
    pub fn new(db: Arc<Rodain>, schema: NumberTranslationDb) -> Server {
        Server {
            backend: Backend::Single(db),
            schema,
            metrics: Arc::new(FrontEndMetrics::new()),
        }
    }

    /// Create a front-end over a sharded cluster: every request routes to
    /// the shard owning its anchor object, and `Stats`/`Metrics` answer
    /// with cluster-wide merges.
    #[must_use]
    pub fn sharded(cluster: Arc<ShardedRodain>, schema: NumberTranslationDb) -> Server {
        Server {
            backend: Backend::Sharded(cluster),
            schema,
            metrics: Arc::new(FrontEndMetrics::new()),
        }
    }

    /// Create a front-end over one node of a multi-process cluster:
    /// requests anchored on shards this node does not own are answered
    /// `WrongShard { epoch }`, and the `ClusterMap` op serves the node's
    /// current [`rodain_shard::ShardMap`].
    #[must_use]
    pub fn cluster(node: Arc<ClusterShards>, schema: NumberTranslationDb) -> Server {
        Server {
            backend: Backend::Cluster(node),
            schema,
            metrics: Arc::new(FrontEndMetrics::new()),
        }
    }

    /// Start serving on `listener`. On unix this is the event-driven
    /// front-end with [`FrontEndConfig::default`] (DESIGN.md §17);
    /// elsewhere it falls back to [`Server::start_threaded`].
    pub fn start(self, listener: TcpListener) -> std::io::Result<ServerHandle> {
        self.start_with(listener, FrontEndConfig::default())
    }

    /// Start the event-driven front-end with explicit tuning knobs. Falls
    /// back to the threaded front-end on platforms without the readiness
    /// poller (the `config` is then ignored).
    pub fn start_with(
        self,
        listener: TcpListener,
        config: FrontEndConfig,
    ) -> std::io::Result<ServerHandle> {
        #[cfg(unix)]
        {
            crate::event::start(self, listener, config)
        }
        #[cfg(not(unix))]
        {
            let _ = config;
            self.start_threaded(listener)
        }
    }

    /// Start the thread-per-connection front-end: a background accept
    /// loop plus one reader + one writer thread per connection. This is
    /// the SATURATION experiment's baseline; prefer [`Server::start`].
    pub fn start_threaded(self, listener: TcpListener) -> std::io::Result<ServerHandle> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_stats = Arc::clone(&stats);
        let fe = Arc::clone(&self.metrics);
        let accept_thread = std::thread::Builder::new()
            .name("rodain-uri-accept".into())
            .spawn(move || {
                let mut backoff = Duration::from_millis(1);
                while !accept_shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            backoff = Duration::from_millis(1);
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            fe.connections.add(1);
                            let backend = self.backend.clone();
                            let schema = self.schema;
                            let stats = Arc::clone(&accept_stats);
                            let fe = Arc::clone(&fe);
                            let _ = std::thread::Builder::new()
                                .name("rodain-uri-conn".into())
                                .spawn(move || serve_connection(stream, backend, schema, stats, fe));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            // Transient accept failures (aborted
                            // handshakes, fd exhaustion) must not kill the
                            // listener; back off exponentially so a
                            // persistent error cannot hot-loop either.
                            accept_stats.accept_errors.fetch_add(1, Ordering::Relaxed);
                            fe.accept_errors.inc();
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(Duration::from_secs(1));
                        }
                    }
                }
            })
            .expect("spawn accept loop");
        Ok(ServerHandle {
            addr,
            shutdown,
            stats,
            threads: vec![accept_thread],
            #[cfg(unix)]
            waker: None,
        })
    }
}

/// A transaction whose outcome the writer is waiting on.
struct PendingReply {
    id: u64,
    future: CommitFuture,
    /// Deferred requests were already answered `CommitPending`; their
    /// final frame is `CommitDurable` (or a failure outcome).
    deferred: bool,
}

enum ReplyJob {
    Pending(PendingReply),
    Immediate(Response),
}

fn serve_connection(
    stream: TcpStream,
    backend: Backend,
    schema: NumberTranslationDb,
    stats: Arc<StatsInner>,
    fe: Arc<FrontEndMetrics>,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_stream) = stream.try_clone() else {
        fe.connections.add(-1);
        return;
    };
    // Writer: resolves replies in request order, keeping the read loop free
    // to accept pipelined requests.
    let (reply_tx, reply_rx) = unbounded::<ReplyJob>();
    let writer_stats = Arc::clone(&stats);
    let writer_fe = Arc::clone(&fe);
    let writer = std::thread::Builder::new()
        .name("rodain-uri-writer".into())
        .spawn(move || writer_loop(write_stream, reply_rx, writer_stats, writer_fe))
        .expect("spawn writer");

    let mut reader = BufReader::new(stream);
    loop {
        let Ok(frame) = read_frame(&mut reader) else {
            break; // disconnect / malformed length
        };
        let Ok(request) = Request::decode(frame) else {
            break; // protocol violation: drop the connection
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if handle_request(&backend, schema, &fe, request, &reply_tx).is_err() {
            break;
        }
    }
    drop(reply_tx);
    let _ = writer.join();
    fe.connections.add(-1);
}

pub(crate) fn txn_options(deadline_ms: u32, tier: DurabilityTier) -> TxnOptions {
    let base = if deadline_ms == 0 {
        TxnOptions::non_real_time()
    } else {
        TxnOptions::firm_ms(u64::from(deadline_ms))
    };
    base.with_durability(tier)
}

/// Cluster placement check: an anchored request whose shard is not seated
/// on this node never reaches an engine — the client's map is stale.
pub(crate) fn shard_redirect(
    backend: &Backend,
    schema: NumberTranslationDb,
    request: &Request,
) -> Option<Outcome> {
    let Backend::Cluster(node) = backend else {
        return None;
    };
    let anchor = match &request.op {
        RequestOp::Translate { number } | RequestOp::Provision { number, .. } => {
            Some(schema.object_id(*number))
        }
        RequestOp::Get { oid } | RequestOp::Put { oid, .. } => Some(*oid),
        _ => None,
    };
    anchor
        .and_then(|a| node.route_check(a))
        .map(|epoch| Outcome::WrongShard { epoch })
}

/// Ops served outside the transaction path, answered synchronously.
/// `Metrics` merges the front-end's own recorder into the engine
/// snapshot so connection/in-flight gauges and loop histograms ride the
/// same scrape. Returns `None` for transactional ops.
pub(crate) fn immediate_outcome(
    backend: &Backend,
    fe: &FrontEndMetrics,
    op: &RequestOp,
) -> Option<Outcome> {
    match op {
        RequestOp::Stats => {
            let stats = backend.stats();
            Some(Outcome::Ok(Value::Record(vec![
                Value::Int(stats.committed as i64),
                Value::Int(stats.aborted() as i64),
                Value::Int(stats.restarts as i64),
                Value::Int(stats.active as i64),
            ])))
        }
        RequestOp::Metrics { format } => {
            let mut snapshot = backend.metrics();
            snapshot.merge(&fe.recorder.snapshot());
            let rendered = match format {
                MetricsFormat::Text => snapshot.render_text(),
                MetricsFormat::Json => snapshot.render_json(),
                MetricsFormat::Prometheus => snapshot.render_prometheus(),
            };
            Some(Outcome::Ok(Value::Text(rendered)))
        }
        RequestOp::Checkpoint => {
            // An operator op, serialized against the background
            // checkpointer. In threaded mode it runs on the connection's
            // read thread; in event-driven mode it occupies one worker
            // until the snapshot installs.
            Some(match backend.force_checkpoint() {
                Ok(path) => Outcome::Ok(Value::Text(path.display().to_string())),
                Err(e) => Outcome::Failed(e.to_string()),
            })
        }
        RequestOp::ClusterMap => Some(match backend {
            Backend::Cluster(node) => Outcome::Ok(node.map().to_value()),
            _ => Outcome::Failed("not a cluster node".into()),
        }),
        _ => None,
    }
}

/// Submit a transactional request to the backend. The caller has already
/// routed away immediate ops ([`immediate_outcome`]) and stale-shard
/// anchors ([`shard_redirect`]).
pub(crate) fn submit_request(
    backend: &Backend,
    schema: NumberTranslationDb,
    request: Request,
    hook: Option<CompletionHook>,
) -> CommitFuture {
    let opts = txn_options(request.deadline_ms, request.tier);
    match request.op {
        RequestOp::Translate { number } => {
            let anchor = schema.object_id(number);
            backend.submit_hooked(anchor, opts, move |ctx| {
                let record = ctx.read(anchor)?;
                Ok(record.map(|r| r.as_record().map(|f| f[0].clone()).unwrap_or(Value::Null)))
            }, hook)
        }
        RequestOp::Provision { number, address } => {
            let oid = schema.object_id(number);
            backend.submit_hooked(oid, opts, move |ctx| {
                let Some(record) = ctx.read(oid)? else {
                    return Ok(None);
                };
                let (flags, count) = match record.as_record() {
                    Some([_, Value::Int(flags), Value::Int(count)]) => (*flags, *count),
                    _ => (0, 0),
                };
                ctx.write(
                    oid,
                    Value::Record(vec![
                        Value::Text(address.clone()),
                        Value::Int(flags),
                        Value::Int(count + 1),
                    ]),
                )?;
                Ok(Some(Value::Int(count + 1)))
            }, hook)
        }
        RequestOp::Get { oid } => backend.submit_hooked(oid, opts, move |ctx| ctx.read(oid), hook),
        RequestOp::Put { oid, value } => backend.submit_hooked(
            oid,
            opts,
            move |ctx| {
                ctx.write(oid, value.clone())?;
                Ok(Some(Value::Null))
            },
            hook,
        ),
        // Immediate ops never reach here (see the callers).
        _ => unreachable!("immediate op submitted as a transaction"),
    }
}

fn handle_request(
    backend: &Backend,
    schema: NumberTranslationDb,
    fe: &FrontEndMetrics,
    request: Request,
    replies: &Sender<ReplyJob>,
) -> Result<(), ()> {
    let id = request.id;
    let deferred = request.deferred;
    if let Some(outcome) = shard_redirect(backend, schema, &request) {
        return replies
            .send(ReplyJob::Immediate(Response { id, outcome }))
            .map_err(|_| ());
    }
    if let Some(outcome) = immediate_outcome(backend, fe, &request.op) {
        return replies
            .send(ReplyJob::Immediate(Response { id, outcome }))
            .map_err(|_| ());
    }
    let future = submit_request(backend, schema, request, None);
    replies
        .send(ReplyJob::Pending(PendingReply {
            id,
            future,
            deferred,
        }))
        .map_err(|_| ())
}

/// Map a resolved transaction outcome onto the wire. A deferred request's
/// final frame is `CommitDurable` (carrying the achieved tier and CSN);
/// failures and `NotFound` use the same outcomes either way.
pub(crate) fn wire_outcome(result: Result<TxnReceipt, TxnError>, deferred: bool) -> Outcome {
    match result {
        Ok(receipt) => match receipt.result {
            Some(value) if deferred => Outcome::CommitDurable {
                tier: receipt.acked_tier,
                csn: receipt.csn.0,
                value,
            },
            Some(value) => Outcome::Ok(value),
            None => Outcome::NotFound,
        },
        Err(TxnError::DeadlineExpired) => Outcome::MissDeadline,
        Err(TxnError::AdmissionDenied | TxnError::Evicted) => Outcome::Overloaded,
        Err(e) => Outcome::Failed(e.to_string()),
    }
}

/// Bump the per-outcome counter for a response leaving the front-end.
pub(crate) fn count_outcome(stats: &StatsInner, outcome: &Outcome) {
    match outcome {
        Outcome::Ok(_) | Outcome::CommitDurable { .. } => {
            stats.ok.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::CommitPending => {}
        Outcome::NotFound => {
            stats.not_found.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::MissDeadline => {
            stats.miss_deadline.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Overloaded => {
            stats.overloaded.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Failed(_) => {
            stats.failed.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::WrongShard { .. } => {
            stats.redirected.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Length-prefix a response into one contiguous wire frame.
pub(crate) fn frame_bytes(response: &Response) -> bytes::Bytes {
    let body = response.encode();
    let mut buf = bytes::BytesMut::with_capacity(4 + body.len());
    buf.put_u32_le(body.len() as u32);
    buf.put_slice(&body);
    buf.freeze()
}

/// The connection's writer: multiplexes newly-submitted jobs and resolving
/// commit futures with one `Select`, so a slow durability gate never blocks
/// the frames behind it. Responses are correlated by request id, not by
/// order; a deferred request gets `CommitPending` as soon as it is
/// submitted and its durable frame whenever the tier gate resolves.
fn writer_loop(
    stream: TcpStream,
    replies: Receiver<ReplyJob>,
    stats: Arc<StatsInner>,
    fe: Arc<FrontEndMetrics>,
) {
    let mut out = BufWriter::new(stream);
    let mut pending: Vec<PendingReply> = Vec::new();
    let mut jobs_open = true;
    'serve: while jobs_open || !pending.is_empty() {
        // Rebuild the selector each round: the pending set changes as
        // futures resolve. Index 0 is the job channel (while open);
        // pending futures follow in vector order.
        // The selector borrows every pending receiver, so it lives in its
        // own scope: the borrows end with it, freeing `pending` for the
        // push/swap_remove below.
        let ready = {
            let mut sel = Select::new();
            if jobs_open {
                sel.recv(&replies);
            }
            for p in &pending {
                sel.recv(p.future.receiver());
            }
            sel.ready()
        };
        let base = usize::from(jobs_open);
        let mut batch: Vec<Response> = Vec::new();
        if jobs_open && ready == 0 {
            match replies.try_recv() {
                Ok(ReplyJob::Immediate(response)) => batch.push(response),
                Ok(ReplyJob::Pending(p)) => {
                    if p.deferred {
                        batch.push(Response {
                            id: p.id,
                            outcome: Outcome::CommitPending,
                        });
                    }
                    pending.push(p);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => {}
                Err(crossbeam::channel::TryRecvError::Disconnected) => jobs_open = false,
            }
        } else {
            let idx = ready - base;
            // `ready` can spuriously wake; `try_wait` returning `None`
            // simply leaves the future in place for the next round.
            if let Some(result) = pending[idx].future.try_wait() {
                let p = pending.swap_remove(idx);
                batch.push(Response {
                    id: p.id,
                    outcome: wire_outcome(result, p.deferred),
                });
            }
        }
        for response in batch {
            count_outcome(&stats, &response.outcome);
            if write_frame(&mut out, &response.encode()).is_err() {
                break 'serve;
            }
            if out.flush().is_err() {
                break 'serve;
            }
        }
    }
    let _ = out.flush();
    // Teardown: either a clean drain (nothing left) or the peer died
    // mid-stream. Whatever is still queued — resolved-but-unwritten
    // futures, plus any jobs the reader submits until it notices the dead
    // socket — can no longer be delivered: drain, drop, and account
    // instead of silently leaking the responses.
    let mut dropped = pending.len() as u64;
    pending.clear();
    for job in replies.iter() {
        let _ = job;
        dropped += 1;
    }
    if dropped > 0 {
        stats.replies_dropped.fetch_add(dropped, Ordering::Relaxed);
        fe.replies_dropped.add(dropped);
    }
}
