//! Property-based tests of the log subsystem.

use proptest::prelude::*;
use rodain_log::{
    encode_record, replay_into, FrameDecoder, LogRecord, Lsn, RecordKind, ReorderBuffer,
};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Store, Ts, TxnId, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[ -~]{0,20}".prop_map(Value::Text),
        prop::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::Record)
    })
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    let kind = prop_oneof![
        (any::<u64>(), value_strategy()).prop_map(|(oid, image)| RecordKind::Write {
            oid: ObjectId(oid),
            image
        }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(csn, ts, n)| {
            RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(ts),
                n_writes: n,
            }
        }),
        Just(RecordKind::Abort),
        (any::<u64>(), any::<u64>()).prop_map(|(upto, id)| RecordKind::Checkpoint {
            upto: Csn(upto),
            snapshot_id: id,
        }),
    ];
    (any::<u64>(), any::<u64>(), kind).prop_map(|(lsn, txn, kind)| LogRecord {
        lsn: Lsn(lsn),
        txn: TxnId(txn),
        kind,
    })
}

proptest! {
    /// Codec roundtrip for arbitrary records, including chunked delivery.
    #[test]
    fn codec_roundtrip(
        records in prop::collection::vec(record_strategy(), 0..20),
        chunk in 1usize..64,
    ) {
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&encode_record(r));
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            decoder.feed(piece);
            while let Some(rec) = decoder.next_record().unwrap() {
                decoded.push(rec);
            }
        }
        prop_assert_eq!(decoded, records);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// Any single-byte corruption anywhere in a frame is detected (checksum
    /// or structural error — never a silently wrong record).
    #[test]
    fn corruption_is_never_silent(
        record in record_strategy(),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut frame = encode_record(&record).to_vec();
        let idx = flip_byte.index(frame.len());
        frame[idx] ^= 1 << flip_bit;
        let mut decoder = FrameDecoder::new();
        decoder.feed(&frame);
        match decoder.next_record() {
            // Detected corruption: fine.
            Err(_) => {}
            // Length-field corruption can leave the frame "incomplete":
            // also fine (torn-tail semantics), as long as nothing decoded.
            Ok(None) => {}
            Ok(Some(decoded)) => {
                // The only way a flip yields a record is if it produced an
                // identical frame — impossible for a single bit flip.
                prop_assert_eq!(decoded, record.clone(), "silent corruption");
                prop_assert!(false, "bit flip decoded to a record");
            }
        }
    }

    /// The reorder buffer releases every committed transaction exactly
    /// once, in CSN order, regardless of how the per-transaction groups
    /// interleave on the wire.
    #[test]
    fn reorder_releases_in_csn_order(
        // (txn index, writes per txn) — CSNs assigned 1..n in txn order.
        writes_per_txn in prop::collection::vec(0u32..4, 1..12),
        interleave_seed in any::<prop::sample::Index>(),
    ) {
        // Build per-txn record groups.
        let mut groups: Vec<Vec<LogRecord>> = Vec::new();
        let mut lsn = 0u64;
        for (i, &n_writes) in writes_per_txn.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            let mut group = Vec::new();
            for w in 0..n_writes {
                lsn += 1;
                group.push(LogRecord {
                    lsn: Lsn(lsn),
                    txn,
                    kind: RecordKind::Write {
                        oid: ObjectId(u64::from(w)),
                        image: Value::Int(i as i64),
                    },
                });
            }
            lsn += 1;
            group.push(LogRecord {
                lsn: Lsn(lsn),
                txn,
                kind: RecordKind::Commit {
                    csn: Csn(i as u64 + 1),
                    ser_ts: Ts((i as u64 + 1) << 20),
                    n_writes,
                },
            });
            groups.push(group);
        }
        // Interleave: repeatedly pick a non-empty group (deterministic from
        // the seed) and emit its next record. Commit records must keep
        // their relative order (the primary validates atomically), so we
        // only interleave WRITE records freely and emit commits in order.
        let mut stream: Vec<LogRecord> = Vec::new();
        let mut cursors = vec![0usize; groups.len()];
        let mut next_commit = 0usize;
        let mut k = interleave_seed.index(usize::MAX / 2);
        loop {
            let pending: Vec<usize> = (0..groups.len())
                .filter(|&g| cursors[g] < groups[g].len())
                .collect();
            if pending.is_empty() {
                break;
            }
            // Candidates: any group whose next record is a write, or the
            // group owning the next commit in CSN order.
            let candidates: Vec<usize> = pending
                .iter()
                .copied()
                .filter(|&g| {
                    let is_commit = cursors[g] == groups[g].len() - 1;
                    !is_commit || g == next_commit
                })
                .collect();
            let pick = candidates[k % candidates.len()];
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if k == 0 { k = 1; }
            stream.push(groups[pick][cursors[pick]].clone());
            if cursors[pick] == groups[pick].len() - 1 {
                next_commit += 1;
            }
            cursors[pick] += 1;
        }

        // Feed the interleaved stream; drain and check.
        let mut rb = ReorderBuffer::new();
        let mut released: Vec<Csn> = Vec::new();
        for rec in stream {
            rb.ingest(rec).unwrap();
            for committed in rb.drain_ready() {
                released.push(committed.csn);
                // Each group is complete.
                prop_assert_eq!(
                    committed.writes.len(),
                    writes_per_txn[committed.csn.0 as usize - 1] as usize
                );
            }
        }
        let expected: Vec<Csn> = (1..=writes_per_txn.len() as u64).map(Csn).collect();
        prop_assert_eq!(released, expected);
        prop_assert_eq!(rb.pending_txns(), 0);
        prop_assert_eq!(rb.ready_backlog(), 0);
    }

    /// replay_into() over a generated log equals direct application of the
    /// committed after-images.
    #[test]
    fn replay_equals_direct_application(
        txns in prop::collection::vec(
            (prop::collection::vec((0..20u64, any::<i64>()), 0..4), any::<bool>()),
            0..15,
        ),
    ) {
        let direct = Store::new();
        let mut records = Vec::new();
        let mut lsn = 0u64;
        let mut csn = 0u64;
        for (i, (writes, committed)) in txns.iter().enumerate() {
            let txn = TxnId(i as u64 + 1);
            for (oid, v) in writes {
                lsn += 1;
                records.push(Ok(LogRecord {
                    lsn: Lsn(lsn),
                    txn,
                    kind: RecordKind::Write {
                        oid: ObjectId(*oid),
                        image: Value::Int(*v),
                    },
                }));
            }
            if *committed {
                csn += 1;
                let ser_ts = Ts(csn << 20);
                lsn += 1;
                records.push(Ok(LogRecord {
                    lsn: Lsn(lsn),
                    txn,
                    kind: RecordKind::Commit {
                        csn: Csn(csn),
                        ser_ts,
                        n_writes: writes.len() as u32,
                    },
                }));
                for (oid, v) in writes {
                    direct.install(ObjectId(*oid), Value::Int(*v), ser_ts);
                }
            }
        }
        let replayed = Store::new();
        let stats = replay_into(&replayed, records).unwrap();
        prop_assert_eq!(stats.committed, csn);
        prop_assert_eq!(replayed.snapshot(), direct.snapshot());
    }
}

proptest! {
    /// The frame decoder never panics on arbitrary byte soup, fed in
    /// arbitrary chunkings — it either yields records, asks for more, or
    /// reports an error.
    #[test]
    fn decoder_never_panics_on_garbage(
        garbage in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..32,
    ) {
        let mut decoder = FrameDecoder::new();
        for piece in garbage.chunks(chunk) {
            decoder.feed(piece);
            loop {
                match decoder.next_record() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => return Ok(()), // detected; done with this case
                }
            }
        }
    }
}
