//! Checkpoint chaos scenarios: crash the node around the fuzzy
//! checkpointer — mid-scan, mid-install, mid-truncation — and race
//! truncation against a lagging mirror (DESIGN.md §15).
//!
//! Every scenario runs under pinned seeds; reproduce a failure with
//! `CHAOS_SEED=<seed> cargo test -p rodain-chaos --test checkpoint_scenarios`
//! (the full workflow is in OPERATIONS.md).

use rodain_chaos::{scenario_seeds, SeededLog};
use rodain_db::{
    CheckpointPolicy, DurabilityTier, MirrorLossPolicy, Rodain, TxnOptions,
};
use rodain_log::{
    replay_frames_into, write_snapshot_file_with_crash, LogStorage, LogStorageConfig,
    ReplayOptions, SnapshotCrashPoint,
};
use rodain_net::{InProcTransport, Transport};
use rodain_node::{recover_with_checkpoint_with, Message, RecoveryOptions};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Store, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodain-checkpoint-chaos-{tag}-{seed}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_tiny(dir: &Path, segment_bytes: u64) -> LogStorage {
    LogStorage::open(LogStorageConfig {
        fsync: false,
        segment_bytes,
        ..LogStorageConfig::new(dir)
    })
    .unwrap()
}

/// C1: fuzzy checkpoints fire while writers keep committing. No commit
/// the engine acknowledged may be missing after a cold restart from
/// (checkpoint + truncated tail), and the tail must be shorter than the
/// full history — the checkpoint actually bounded recovery.
#[test]
fn c1_fuzzy_checkpoint_under_load_recovers_every_acked_commit() {
    for seed in scenario_seeds() {
        let log_dir = scratch_dir("c1-log", seed);
        let snap_dir = scratch_dir("c1-snap", seed);
        let db = Arc::new(
            Rodain::builder()
                .workers(2)
                .contingency_storage(open_tiny(&log_dir, 512))
                .checkpoints(&snap_dir, CheckpointPolicy::default())
                .build()
                .unwrap(),
        );
        let objects = 8u64;
        // Two writer threads race the checkpointer: object o holds the
        // last value any committed transaction wrote to it.
        let mut writers = Vec::new();
        for t in 0..2u64 {
            let db = Arc::clone(&db);
            writers.push(std::thread::spawn(move || {
                for i in 0..60i64 {
                    let oid = ObjectId((seed + t * 3 + i as u64) % objects);
                    let val = (seed as i64) * 1_000 + t as i64 * 100 + i;
                    db.execute(TxnOptions::soft_ms(10_000), move |ctx| {
                        ctx.write(oid, Value::Int(val))?;
                        Ok(None)
                    })
                    .unwrap();
                }
            }));
        }
        // Checkpoints interleave with the writes — the fuzzy scan runs
        // concurrently with commits by construction.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(5));
            db.force_checkpoint().unwrap();
        }
        for w in writers {
            w.join().unwrap();
        }
        // One final checkpoint with traffic quiesced, then the "crash".
        db.force_checkpoint().unwrap();
        let total_commits = db.stats().committed;
        let live: Vec<_> = (0..objects).map(|o| db.get(ObjectId(o))).collect();
        drop(db);

        let cold = recover_with_checkpoint_with(
            &log_dir,
            &snap_dir,
            &RecoveryOptions::with_workers(2),
        )
        .unwrap();
        for (o, want) in live.iter().enumerate() {
            assert_eq!(
                cold.store.read(ObjectId(o as u64)).map(|(v, _)| v),
                *want,
                "seed {seed}: object {o} diverged after checkpointed recovery"
            );
        }
        assert!(
            cold.stats.committed < total_commits,
            "seed {seed}: truncation never shortened the tail \
             ({} of {total_commits} commits replayed)",
            cold.stats.committed
        );
        let _ = std::fs::remove_dir_all(&log_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
}

/// C2: the node crashes mid-install of checkpoint N+1, at every point
/// before the rename becomes durable. The previous checkpoint and the
/// log tail retained *behind its own boundary* (truncation runs only
/// after a successful install) must reconstruct the full state.
#[test]
fn c2_crash_mid_install_falls_back_to_prior_checkpoint_and_tail() {
    for seed in scenario_seeds() {
        let log_dir = scratch_dir("c2-log", seed);
        let snap_dir = scratch_dir("c2-snap", seed);
        let db = Rodain::builder()
            .workers(2)
            .contingency_storage(open_tiny(&log_dir, 512))
            .checkpoints(&snap_dir, CheckpointPolicy::default())
            .build()
            .unwrap();
        let write = |db: &Rodain, i: i64| {
            let oid = ObjectId((seed + i as u64) % 10);
            db.execute(TxnOptions::soft_ms(10_000), move |ctx| {
                ctx.write(oid, Value::Int(i))?;
                Ok(None)
            })
            .unwrap();
        };
        for i in 0..30 {
            write(&db, i);
        }
        // Checkpoint 1 installs and truncates behind its boundary.
        db.force_checkpoint().unwrap();
        for i in 30..50 {
            write(&db, i);
        }
        // Checkpoint 2 crashes mid-install: temp file written (and even
        // synced) but never renamed. Exercised at both crash points.
        let boundary = Csn(db.stats().committed + 1);
        let snapshot = db.snapshot();
        for crash in [
            SnapshotCrashPoint::AfterTempWrite,
            SnapshotCrashPoint::AfterTempSync,
        ] {
            let err =
                write_snapshot_file_with_crash(&snap_dir, &snapshot, boundary, crash).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        }
        let live: Vec<_> = (0..10u64).map(|o| db.get(ObjectId(o))).collect();
        drop(db);

        // Recovery must pick checkpoint 1 — never a torso of checkpoint 2
        // — and the tail retained behind checkpoint 1 covers the rest.
        let cold = recover_with_checkpoint_with(
            &log_dir,
            &snap_dir,
            &RecoveryOptions::with_workers(2),
        )
        .unwrap();
        for (o, want) in live.iter().enumerate() {
            assert_eq!(
                cold.store.read(ObjectId(o as u64)).map(|(v, _)| v),
                *want,
                "seed {seed}: object {o} lost to the crashed install"
            );
        }
        let _ = std::fs::remove_dir_all(&log_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
}

/// C3: the node crashes midway through the truncation pass — some
/// GC-eligible segments already deleted, some still on disk. Replaying
/// the leftovers over the snapshot is idempotent, so recovery converges
/// to the same state as an untruncated log.
#[test]
fn c3_crash_mid_truncation_leaves_a_recoverable_log() {
    for seed in scenario_seeds() {
        let objects = 12u64;
        let log = SeededLog::generate(seed, 120, objects);
        let log_dir = scratch_dir("c3-log", seed);
        let snap_dir = scratch_dir("c3-snap", seed);
        {
            let mut storage = open_tiny(&log_dir, 256);
            storage.append_batch(&log.records).unwrap();
            storage.flush().unwrap();
        }
        // Checkpoint at the final state; every closed segment is eligible.
        let full = Arc::new(Store::new());
        let mut frames = LogStorage::scan_dir_frames(&log_dir).unwrap();
        replay_frames_into(&full, &mut frames, ReplayOptions::with_workers(1)).unwrap();
        let boundary = Csn(log.max_csn.0 + 1);
        rodain_log::write_snapshot_file(&snap_dir, &full.snapshot(), boundary).unwrap();

        // Crash mid-truncation: the GC deletes oldest-first, so a crash
        // partway leaves a strict prefix gone. Simulate by deleting only
        // the first half of what a full truncation would take.
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&log_dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "rodainlog"))
            .collect();
        segments.sort();
        assert!(segments.len() >= 4, "seed {seed}: want several segments");
        let eligible = segments.len() - 1; // all closed segments
        for path in &segments[..eligible / 2] {
            std::fs::remove_file(path).unwrap();
        }

        let cold = recover_with_checkpoint_with(
            &log_dir,
            &snap_dir,
            &RecoveryOptions::with_workers(2),
        )
        .unwrap();
        let violations = log.check_store(&cold.store, "mid-truncation recovery");
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        let _ = std::fs::remove_dir_all(&log_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
}

/// C4: checkpoint truncation races in-flight shipping to a *lagging*
/// mirror. The fence (DESIGN.md §15) must hold back every segment whose
/// commits the mirror has not acknowledged: after the primary dies and
/// its snapshot is lost, the un-acked commits are still on its local
/// disk log, and the acked prefix lives on the mirror — no acked commit
/// depends on a deleted segment.
#[test]
fn c4_truncation_racing_lagging_mirror_is_fenced_on_the_ack_watermark() {
    let fallback_dir = scratch_dir("c4-fallback", 0);
    let snap_dir = scratch_dir("c4-snap", 0);
    let db = Rodain::builder()
        .workers(1)
        .commit_gate_timeout(Duration::from_secs(30))
        .checkpoints(&snap_dir, CheckpointPolicy::default())
        .build()
        .unwrap();

    // A hand-rolled mirror: joins, drains the snapshot, then acknowledges
    // only commits up to the (dynamically raised) `ack_upto` — a mirror
    // that fell behind. It must stay alive through the checkpoint: a dead
    // link disables the fence (the fallback log becomes the only copy).
    const ACK_UPTO: u64 = 6;
    const COMMITS: u64 = 12;
    let ack_upto = Arc::new(std::sync::atomic::AtomicU64::new(ACK_UPTO));
    let mirror_ack_upto = Arc::clone(&ack_upto);
    let (primary_side, mirror_side) = InProcTransport::pair();
    let mirror_thread = std::thread::spawn(move || {
        mirror_side.send(Message::JoinRequest.encode()).unwrap();
        let mut received: Vec<(u64, rodain_store::TxnId)> = Vec::new();
        let mut acked = 0u64;
        loop {
            match mirror_side.recv_timeout(Duration::from_millis(20)) {
                Ok(Some(frame)) => match Message::decode(frame) {
                    Ok(Message::Records(records)) => {
                        for record in records {
                            if let rodain_log::RecordKind::Commit { csn, .. } = record.kind {
                                received.push((csn.0, record.txn));
                            }
                        }
                    }
                    Ok(_) => {}
                    Err(_) => break,
                },
                Ok(None) => {}
                Err(_) => break, // transport closed: primary shut down
            }
            // Cumulative ack up to the allowed lag point.
            let allowed = mirror_ack_upto.load(std::sync::atomic::Ordering::Acquire);
            if let Some(&(csn, txn)) = received
                .iter()
                .filter(|(c, _)| *c <= allowed)
                .max_by_key(|(c, _)| *c)
            {
                if csn > acked {
                    acked = csn;
                    let _ = mirror_side.send(
                        Message::CommitAck {
                            txn,
                            csn: Csn(csn),
                        }
                        .encode(),
                    );
                }
            }
        }
        received.into_iter().map(|(c, _)| c).collect::<Vec<u64>>()
    });
    db.attach_mirror(
        Arc::new(primary_side),
        MirrorLossPolicy::Contingency {
            dir: fallback_dir.clone(),
            // Tiny segments: every commit's pre-append closes a segment,
            // so truncation has real work the fence must hold back.
            segment_bytes: Some(64),
        },
    )
    .unwrap();

    // DiskFsynced commits pre-append to the fallback log at ship time.
    // The first ACK_UPTO resolve on mirror acks; the rest stay in flight
    // (their futures pending) while the checkpoint races them.
    let futures: Vec<_> = (1..=COMMITS)
        .map(|i| {
            db.submit(
                TxnOptions::soft_ms(60_000).with_durability(DurabilityTier::DiskFsynced),
                move |ctx| {
                    ctx.write(ObjectId(i), Value::Int(i as i64))?;
                    Ok(None)
                },
            )
        })
        .collect();
    // Wait for the acked prefix so the watermark is exactly ACK_UPTO:
    // only ACK_UPTO acks are ever sent before we raise the allowance.
    for fut in futures.iter().take(ACK_UPTO as usize) {
        fut.wait_timeout(Duration::from_secs(10))
            .expect("acked commit resolved")
            .unwrap();
    }

    // Checkpoint now, while the link is live and lagging: the boundary
    // covers all COMMITS, but the fence must clamp truncation to the ack
    // watermark.
    db.force_checkpoint().unwrap();
    let truncated = db
        .metrics()
        .counter("checkpoint_truncated_segments_total")
        .unwrap_or(0);
    assert!(
        truncated >= 1,
        "acked prefix should free at least one segment (got {truncated})"
    );

    // Let the mirror catch up so every in-flight commit resolves cleanly.
    ack_upto.store(COMMITS, std::sync::atomic::Ordering::Release);
    for fut in futures.iter().skip(ACK_UPTO as usize) {
        fut.wait_timeout(Duration::from_secs(10))
            .expect("commit resolved after catch-up")
            .unwrap();
    }
    drop(db); // closes the transport; the mirror loop exits on Disconnected
    let shipped = mirror_thread.join().unwrap();
    assert_eq!(shipped.len() as u64, COMMITS, "mirror saw every commit");

    // Disaster: the primary's snapshot is lost. The mirror holds the
    // acked prefix; the fallback log must still hold every un-acked
    // commit — the fence kept their segments.
    let cold = rodain_node::recover_store_from_disk(&fallback_dir).unwrap();
    for i in (ACK_UPTO + 1)..=COMMITS {
        assert_eq!(
            cold.store.read(ObjectId(i)).map(|(v, _)| v),
            Some(Value::Int(i as i64)),
            "un-acked commit {i} lost: truncation outran the ack watermark"
        );
    }
    let _ = std::fs::remove_dir_all(&fallback_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}

/// C5 (seeded equivalence): for random workloads, recovery from
/// (checkpoint + truncated tail) must equal recovery from the full,
/// untruncated log — truncation only removes information the snapshot
/// already carries.
#[test]
fn c5_checkpoint_plus_tail_equals_full_log_replay_for_random_workloads() {
    for seed in scenario_seeds() {
        let objects = 16u64;
        let log = SeededLog::generate(seed, 150, objects);
        let full_dir = scratch_dir("c5-full", seed);
        let trunc_dir = scratch_dir("c5-trunc", seed);
        let snap_dir = scratch_dir("c5-snap", seed);
        for dir in [&full_dir, &trunc_dir] {
            let mut storage = open_tiny(dir, 256);
            storage.append_batch(&log.records).unwrap();
            storage.flush().unwrap();
        }

        // Reference: replay the untouched log.
        let reference = Arc::new(Store::new());
        let mut frames = LogStorage::scan_dir_frames(&full_dir).unwrap();
        let ref_stats =
            replay_frames_into(&reference, &mut frames, ReplayOptions::with_workers(1)).unwrap();
        assert_eq!(ref_stats.committed, log.commits, "seed {seed}");

        // Checkpoint the state as of a seed-chosen mid-log boundary...
        let stop = 1 + (seed % log.commits.max(2));
        let mid = Arc::new(Store::new());
        let mut frames = LogStorage::scan_dir_frames(&trunc_dir).unwrap();
        let partial = replay_frames_into(
            &mid,
            &mut frames,
            ReplayOptions {
                workers: 1,
                stop_after_commits: Some(stop),
            },
        )
        .unwrap();
        let boundary = Csn(partial.watermark.0 + 1);
        rodain_log::write_snapshot_file(&snap_dir, &mid.snapshot(), boundary).unwrap();

        // ...and truncate for real, through the storage layer's own GC.
        {
            let mut storage = open_tiny(&trunc_dir, 256);
            storage.truncate_before(boundary).unwrap();
        }

        let cold = recover_with_checkpoint_with(
            &trunc_dir,
            &snap_dir,
            &RecoveryOptions::with_workers(2),
        )
        .unwrap();
        assert_eq!(
            cold.store.snapshot(),
            reference.snapshot(),
            "seed {seed}: checkpoint+tail diverged from full-log replay (boundary {boundary:?})"
        );
        let _ = std::fs::remove_dir_all(&full_dir);
        let _ = std::fs::remove_dir_all(&trunc_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
}
