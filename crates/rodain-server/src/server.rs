//! The TCP front-end.

use crate::cluster::ClusterShards;
use crate::protocol::{
    read_frame, write_frame, MetricsFormat, Outcome, Request, RequestOp, Response,
};
use crossbeam::channel::{unbounded, Receiver, Select, Sender};
use rodain_db::{
    CommitFuture, DurabilityTier, EngineStats, MetricsSnapshot, Rodain, TxnAbort, TxnCtx, TxnError,
    TxnOptions, TxnReceipt,
};
use rodain_shard::ShardedRodain;
use rodain_store::{ObjectId, Value};
use rodain_workload::NumberTranslationDb;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monotone request counters.
#[derive(Default)]
struct StatsInner {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    not_found: AtomicU64,
    miss_deadline: AtomicU64,
    overloaded: AtomicU64,
    failed: AtomicU64,
    redirected: AtomicU64,
}

/// Snapshot of the front-end's request counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests received.
    pub requests: u64,
    /// Requests answered `Ok`.
    pub ok: u64,
    /// Requests answered `NotFound`.
    pub not_found: u64,
    /// Requests that missed their deadline.
    pub miss_deadline: u64,
    /// Requests rejected by the overload manager.
    pub overloaded: u64,
    /// Requests that failed for any other reason.
    pub failed: u64,
    /// Requests answered `WrongShard` (cluster nodes only).
    pub redirected: u64,
}

/// What answers the front-end's transactions: one engine, or a
/// hash-partitioned cluster where each request routes to the shard that
/// owns its anchor object.
#[derive(Clone)]
pub enum Backend {
    /// A single engine — the paper's one-node database.
    Single(Arc<Rodain>),
    /// A sharded cluster; single-shard requests take the fast path to
    /// their owning engine.
    Sharded(Arc<ShardedRodain>),
    /// One node of a multi-process cluster: only locally-owned shards
    /// are served; anchors routing elsewhere are answered
    /// `WrongShard { epoch }` so the client refetches the shard map.
    Cluster(Arc<ClusterShards>),
}

impl Backend {
    /// Submit a transaction anchored at `anchor` (the object the request
    /// addresses; ignored by a single engine).
    fn submit<F>(&self, anchor: ObjectId, opts: TxnOptions, closure: F) -> CommitFuture
    where
        F: FnMut(&mut TxnCtx) -> Result<Option<Value>, TxnAbort> + Send + 'static,
    {
        match self {
            Backend::Single(db) => db.submit(opts, closure),
            Backend::Sharded(cluster) => cluster.submit_on(anchor, opts, closure),
            Backend::Cluster(node) => node.local().submit_on(anchor, opts, closure),
        }
    }

    /// Engine statistics — cluster-wide totals when sharded.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        match self {
            Backend::Single(db) => db.stats(),
            Backend::Sharded(cluster) => cluster.stats(),
            Backend::Cluster(node) => node.local().stats(),
        }
    }

    /// Metrics snapshot — per-shard labelled and merged when sharded.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        match self {
            Backend::Single(db) => db.metrics(),
            Backend::Sharded(cluster) => cluster.metrics(),
            Backend::Cluster(node) => node.metrics(),
        }
    }

    /// Force a checkpoint now (the `Checkpoint` wire op). A sharded
    /// cluster checkpoints every live shard with its own configured
    /// policy; the returned path is the last shard's snapshot file.
    /// Fails when no engine has checkpointing configured
    /// ([`rodain_db::RodainBuilder::checkpoints`]).
    pub fn force_checkpoint(&self) -> std::io::Result<std::path::PathBuf> {
        let sharded = match self {
            Backend::Single(db) => return db.force_checkpoint(),
            Backend::Sharded(cluster) => cluster,
            Backend::Cluster(node) => node.local(),
        };
        let mut last = None;
        for shard in 0..sharded.shard_count() {
            if let Some(engine) = sharded.engine(shard) {
                last = Some(engine.force_checkpoint()?);
            }
        }
        last.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "checkpointing not configured on any shard",
            )
        })
    }
}

/// The User Request Interpreter: accepts connections and maps requests onto
/// engine transactions. Requests on one connection may be pipelined;
/// responses are written in request order.
pub struct Server {
    backend: Backend,
    schema: NumberTranslationDb,
}

/// Handle to a running server: address, stats, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request-counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            ok: self.stats.ok.load(Ordering::Relaxed),
            not_found: self.stats.not_found.load(Ordering::Relaxed),
            miss_deadline: self.stats.miss_deadline.load(Ordering::Relaxed),
            overloaded: self.stats.overloaded.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            redirected: self.stats.redirected.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting connections and join the accept loop. Existing
    /// connections drain naturally (clients see EOF on their next read).
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Server {
    /// Create a front-end over `db` serving the number-translation schema
    /// `schema` (generic `Get`/`Put` work regardless).
    #[must_use]
    pub fn new(db: Arc<Rodain>, schema: NumberTranslationDb) -> Server {
        Server {
            backend: Backend::Single(db),
            schema,
        }
    }

    /// Create a front-end over a sharded cluster: every request routes to
    /// the shard owning its anchor object, and `Stats`/`Metrics` answer
    /// with cluster-wide merges.
    #[must_use]
    pub fn sharded(cluster: Arc<ShardedRodain>, schema: NumberTranslationDb) -> Server {
        Server {
            backend: Backend::Sharded(cluster),
            schema,
        }
    }

    /// Create a front-end over one node of a multi-process cluster:
    /// requests anchored on shards this node does not own are answered
    /// `WrongShard { epoch }`, and the `ClusterMap` op serves the node's
    /// current [`rodain_shard::ShardMap`].
    #[must_use]
    pub fn cluster(node: Arc<ClusterShards>, schema: NumberTranslationDb) -> Server {
        Server {
            backend: Backend::Cluster(node),
            schema,
        }
    }

    /// Start serving on `listener` (a background accept loop + one thread
    /// pair per connection).
    pub fn start(self, listener: TcpListener) -> std::io::Result<ServerHandle> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_stats = Arc::clone(&stats);
        let accept_thread = std::thread::Builder::new()
            .name("rodain-uri-accept".into())
            .spawn(move || {
                while !accept_shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                            let backend = self.backend.clone();
                            let schema = self.schema;
                            let stats = Arc::clone(&accept_stats);
                            let _ = std::thread::Builder::new()
                                .name("rodain-uri-conn".into())
                                .spawn(move || serve_connection(stream, backend, schema, stats));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept loop");
        Ok(ServerHandle {
            addr,
            shutdown,
            stats,
            accept_thread: Some(accept_thread),
        })
    }
}

/// A transaction whose outcome the writer is waiting on.
struct PendingReply {
    id: u64,
    future: CommitFuture,
    /// Deferred requests were already answered `CommitPending`; their
    /// final frame is `CommitDurable` (or a failure outcome).
    deferred: bool,
}

enum ReplyJob {
    Pending(PendingReply),
    Immediate(Response),
}

fn serve_connection(
    stream: TcpStream,
    backend: Backend,
    schema: NumberTranslationDb,
    stats: Arc<StatsInner>,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_stream) = stream.try_clone() else {
        return;
    };
    // Writer: resolves replies in request order, keeping the read loop free
    // to accept pipelined requests.
    let (reply_tx, reply_rx) = unbounded::<ReplyJob>();
    let writer_stats = Arc::clone(&stats);
    let writer = std::thread::Builder::new()
        .name("rodain-uri-writer".into())
        .spawn(move || writer_loop(write_stream, reply_rx, writer_stats))
        .expect("spawn writer");

    let mut reader = BufReader::new(stream);
    loop {
        let Ok(frame) = read_frame(&mut reader) else {
            break; // disconnect / malformed length
        };
        let Ok(request) = Request::decode(frame) else {
            break; // protocol violation: drop the connection
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if handle_request(&backend, schema, request, &reply_tx).is_err() {
            break;
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

fn txn_options(deadline_ms: u32, tier: DurabilityTier) -> TxnOptions {
    let base = if deadline_ms == 0 {
        TxnOptions::non_real_time()
    } else {
        TxnOptions::firm_ms(u64::from(deadline_ms))
    };
    base.with_durability(tier)
}

fn handle_request(
    backend: &Backend,
    schema: NumberTranslationDb,
    request: Request,
    replies: &Sender<ReplyJob>,
) -> Result<(), ()> {
    let id = request.id;
    let deferred = request.deferred;
    let opts = txn_options(request.deadline_ms, request.tier);
    // Cluster placement check: an anchored request whose shard is not
    // seated here never reaches an engine — the client's map is stale.
    if let Backend::Cluster(node) = backend {
        let anchor = match &request.op {
            RequestOp::Translate { number } | RequestOp::Provision { number, .. } => {
                Some(schema.object_id(*number))
            }
            RequestOp::Get { oid } | RequestOp::Put { oid, .. } => Some(*oid),
            _ => None,
        };
        if let Some(epoch) = anchor.and_then(|a| node.route_check(a)) {
            return replies
                .send(ReplyJob::Immediate(Response {
                    id,
                    outcome: Outcome::WrongShard { epoch },
                }))
                .map_err(|_| ());
        }
    }
    let future = match request.op {
        RequestOp::Translate { number } => {
            let anchor = schema.object_id(number);
            backend.submit(anchor, opts, move |ctx| {
                let record = ctx.read(anchor)?;
                Ok(record.map(|r| r.as_record().map(|f| f[0].clone()).unwrap_or(Value::Null)))
            })
        }
        RequestOp::Provision { number, address } => {
            let oid = schema.object_id(number);
            backend.submit(oid, opts, move |ctx| {
                let Some(record) = ctx.read(oid)? else {
                    return Ok(None);
                };
                let (flags, count) = match record.as_record() {
                    Some([_, Value::Int(flags), Value::Int(count)]) => (*flags, *count),
                    _ => (0, 0),
                };
                ctx.write(
                    oid,
                    Value::Record(vec![
                        Value::Text(address.clone()),
                        Value::Int(flags),
                        Value::Int(count + 1),
                    ]),
                )?;
                Ok(Some(Value::Int(count + 1)))
            })
        }
        RequestOp::Get { oid } => backend.submit(oid, opts, move |ctx| ctx.read(oid)),
        RequestOp::Put { oid, value } => backend.submit(oid, opts, move |ctx| {
            ctx.write(oid, value.clone())?;
            Ok(Some(Value::Null))
        }),
        RequestOp::Stats => {
            let stats = backend.stats();
            let payload = Value::Record(vec![
                Value::Int(stats.committed as i64),
                Value::Int(stats.aborted() as i64),
                Value::Int(stats.restarts as i64),
                Value::Int(stats.active as i64),
            ]);
            return replies
                .send(ReplyJob::Immediate(Response {
                    id,
                    outcome: Outcome::Ok(payload),
                }))
                .map_err(|_| ());
        }
        RequestOp::Metrics { format } => {
            let snapshot = backend.metrics();
            let rendered = match format {
                MetricsFormat::Text => snapshot.render_text(),
                MetricsFormat::Json => snapshot.render_json(),
                MetricsFormat::Prometheus => snapshot.render_prometheus(),
            };
            return replies
                .send(ReplyJob::Immediate(Response {
                    id,
                    outcome: Outcome::Ok(Value::Text(rendered)),
                }))
                .map_err(|_| ());
        }
        RequestOp::Checkpoint => {
            // Runs inline on the connection's read thread: an operator op,
            // serialized against the background checkpointer. Pipelined
            // requests behind it wait for the snapshot to install.
            let outcome = match backend.force_checkpoint() {
                Ok(path) => Outcome::Ok(Value::Text(path.display().to_string())),
                Err(e) => Outcome::Failed(e.to_string()),
            };
            return replies
                .send(ReplyJob::Immediate(Response { id, outcome }))
                .map_err(|_| ());
        }
        RequestOp::ClusterMap => {
            let outcome = match backend {
                Backend::Cluster(node) => Outcome::Ok(node.map().to_value()),
                _ => Outcome::Failed("not a cluster node".into()),
            };
            return replies
                .send(ReplyJob::Immediate(Response { id, outcome }))
                .map_err(|_| ());
        }
    };
    replies
        .send(ReplyJob::Pending(PendingReply {
            id,
            future,
            deferred,
        }))
        .map_err(|_| ())
}

/// Map a resolved transaction outcome onto the wire. A deferred request's
/// final frame is `CommitDurable` (carrying the achieved tier and CSN);
/// failures and `NotFound` use the same outcomes either way.
fn wire_outcome(result: Result<TxnReceipt, TxnError>, deferred: bool) -> Outcome {
    match result {
        Ok(receipt) => match receipt.result {
            Some(value) if deferred => Outcome::CommitDurable {
                tier: receipt.acked_tier,
                csn: receipt.csn.0,
                value,
            },
            Some(value) => Outcome::Ok(value),
            None => Outcome::NotFound,
        },
        Err(TxnError::DeadlineExpired) => Outcome::MissDeadline,
        Err(TxnError::AdmissionDenied | TxnError::Evicted) => Outcome::Overloaded,
        Err(e) => Outcome::Failed(e.to_string()),
    }
}

/// The connection's writer: multiplexes newly-submitted jobs and resolving
/// commit futures with one `Select`, so a slow durability gate never blocks
/// the frames behind it. Responses are correlated by request id, not by
/// order; a deferred request gets `CommitPending` as soon as it is
/// submitted and its durable frame whenever the tier gate resolves.
fn writer_loop(stream: TcpStream, replies: Receiver<ReplyJob>, stats: Arc<StatsInner>) {
    let mut out = BufWriter::new(stream);
    let mut pending: Vec<PendingReply> = Vec::new();
    let mut jobs_open = true;
    'serve: while jobs_open || !pending.is_empty() {
        // Rebuild the selector each round: the pending set changes as
        // futures resolve. Index 0 is the job channel (while open);
        // pending futures follow in vector order.
        // The selector borrows every pending receiver, so it lives in its
        // own scope: the borrows end with it, freeing `pending` for the
        // push/swap_remove below.
        let ready = {
            let mut sel = Select::new();
            if jobs_open {
                sel.recv(&replies);
            }
            for p in &pending {
                sel.recv(p.future.receiver());
            }
            sel.ready()
        };
        let base = usize::from(jobs_open);
        let mut batch: Vec<Response> = Vec::new();
        if jobs_open && ready == 0 {
            match replies.try_recv() {
                Ok(ReplyJob::Immediate(response)) => batch.push(response),
                Ok(ReplyJob::Pending(p)) => {
                    if p.deferred {
                        batch.push(Response {
                            id: p.id,
                            outcome: Outcome::CommitPending,
                        });
                    }
                    pending.push(p);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => {}
                Err(crossbeam::channel::TryRecvError::Disconnected) => jobs_open = false,
            }
        } else {
            let idx = ready - base;
            // `ready` can spuriously wake; `try_wait` returning `None`
            // simply leaves the future in place for the next round.
            if let Some(result) = pending[idx].future.try_wait() {
                let p = pending.swap_remove(idx);
                batch.push(Response {
                    id: p.id,
                    outcome: wire_outcome(result, p.deferred),
                });
            }
        }
        for response in batch {
            match &response.outcome {
                Outcome::Ok(_) | Outcome::CommitDurable { .. } => {
                    stats.ok.fetch_add(1, Ordering::Relaxed);
                }
                Outcome::CommitPending => {}
                Outcome::NotFound => {
                    stats.not_found.fetch_add(1, Ordering::Relaxed);
                }
                Outcome::MissDeadline => {
                    stats.miss_deadline.fetch_add(1, Ordering::Relaxed);
                }
                Outcome::Overloaded => {
                    stats.overloaded.fetch_add(1, Ordering::Relaxed);
                }
                Outcome::Failed(_) => {
                    stats.failed.fetch_add(1, Ordering::Relaxed);
                }
                Outcome::WrongShard { .. } => {
                    stats.redirected.fetch_add(1, Ordering::Relaxed);
                }
            }
            if write_frame(&mut out, &response.encode()).is_err() {
                break 'serve;
            }
            if out.flush().is_err() {
                break 'serve;
            }
        }
    }
    let _ = out.flush();
}
