//! OCC-BC — classical forward validation with broadcast commit.

use crate::active::{OccCore, OccPolicy};
use crate::traits::{
    AccessDecision, CcPriority, CcStats, ConcurrencyController, Protocol, RestartReason,
    ValidationOutcome,
};
use rodain_store::{ObjectId, Store, Ts, TxnId, Workspace};

/// Classical OCC with forward validation and broadcast commit.
///
/// The validating transaction always commits; every active transaction
/// whose read or write set intersects the validator's write set is
/// restarted on the spot. This is the baseline whose "unnecessary restarts"
/// OCC-DATI was designed to eliminate — a transaction is killed even when a
/// serialization order existed that would have let both commit.
pub struct OccBc {
    core: OccCore,
}

impl OccBc {
    /// Create a controller.
    #[must_use]
    pub fn new() -> Self {
        OccBc {
            core: OccCore::new(OccPolicy {
                protocol: Protocol::OccBc,
                broadcast: true,
                eager: false,
                allow_backward: false,
            }),
        }
    }
}

impl Default for OccBc {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrencyController for OccBc {
    fn protocol(&self) -> Protocol {
        self.core.protocol()
    }

    fn begin(&self, txn: TxnId, priority: CcPriority) {
        self.core.begin(txn, priority);
    }

    fn on_read(&self, txn: TxnId, oid: ObjectId, observed_wts: Ts) -> AccessDecision {
        self.core.on_read(txn, oid, observed_wts)
    }

    fn on_write(&self, txn: TxnId, oid: ObjectId, store: &Store) -> AccessDecision {
        self.core.on_write(txn, oid, store)
    }

    fn doomed(&self, txn: TxnId) -> Option<RestartReason> {
        self.core.doomed(txn)
    }

    fn validate(&self, ws: &Workspace, store: &Store) -> ValidationOutcome {
        self.core.validate(ws, store)
    }

    fn remove(&self, txn: TxnId) {
        self.core.remove(txn);
    }

    fn stats(&self) -> CcStats {
        self.core.stats()
    }

    fn active_count(&self) -> usize {
        self.core.active_count()
    }
}
