//! Property-based tests of the store substrate.

use proptest::prelude::*;
use rodain_store::{ObjectId, Snapshot, Store, Ts, TxnId, Value, VersionedObject, Workspace};
use std::collections::HashMap;

/// Strategy for plausible object values (bounded recursion).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-z0-9+-]{0,16}".prop_map(Value::Text),
        prop::collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::Record)
    })
}

#[derive(Clone, Debug)]
enum WsOp {
    Read(u64),
    Write(u64, i64),
    Delete(u64),
}

fn ws_op(n_objects: u64) -> impl Strategy<Value = WsOp> {
    prop_oneof![
        (0..n_objects).prop_map(WsOp::Read),
        (0..n_objects, any::<i64>()).prop_map(|(o, v)| WsOp::Write(o, v)),
        (0..n_objects).prop_map(WsOp::Delete),
    ]
}

proptest! {
    /// The deferred-write workspace behaves exactly like a HashMap overlay
    /// over the committed store.
    #[test]
    fn workspace_matches_overlay_model(
        ops in prop::collection::vec(ws_op(16), 0..40),
    ) {
        let store = Store::new();
        for oid in 0..16u64 {
            store.load_initial(ObjectId(oid), Value::Int(-(oid as i64)));
        }
        let mut ws = Workspace::new(TxnId(1));
        // The model: committed base + overlay of this txn's writes.
        let mut overlay: HashMap<u64, Option<i64>> = HashMap::new();
        for op in &ops {
            match op {
                WsOp::Read(o) => {
                    let got = ws.read(&store, ObjectId(*o));
                    let expected = match overlay.get(o) {
                        Some(Some(v)) => Some(Value::Int(*v)),
                        Some(None) => None,
                        None => Some(Value::Int(-(*o as i64))),
                    };
                    prop_assert_eq!(got, expected);
                }
                WsOp::Write(o, v) => {
                    ws.write(ObjectId(*o), Value::Int(*v));
                    overlay.insert(*o, Some(*v));
                }
                WsOp::Delete(o) => {
                    ws.write(ObjectId(*o), Value::Null);
                    overlay.insert(*o, None);
                }
            }
        }
        // Write set matches the overlay.
        prop_assert_eq!(ws.write_count(), overlay.len());
        // Install applies the overlay to the store.
        ws.install_into(&store, Ts(7));
        for (o, v) in &overlay {
            let got = store.read(ObjectId(*o)).map(|(value, _)| value);
            let expected = v.map(Value::Int);
            prop_assert_eq!(got, expected);
        }
    }

    /// install never rewinds version metadata, whatever order installs
    /// arrive in.
    #[test]
    fn version_metadata_is_monotone(
        installs in prop::collection::vec((0..8u64, 0..100u64, any::<i64>()), 1..60),
    ) {
        let store = Store::new();
        let mut max_ts: HashMap<u64, u64> = HashMap::new();
        for (oid, ts, v) in &installs {
            store.install(ObjectId(*oid), Value::Int(*v), Ts(*ts));
            let entry = max_ts.entry(*oid).or_insert(0);
            *entry = (*entry).max(*ts);
            let (wts, rts) = store.version(ObjectId(*oid)).unwrap();
            prop_assert_eq!(wts.0, *entry);
            prop_assert!(rts >= wts || rts.0 == *entry);
        }
    }

    /// Snapshot chunk/merge is the identity for any chunk size and any
    /// delivery order.
    #[test]
    fn snapshot_chunking_roundtrip(
        objects in prop::collection::btree_map(0..200u64, (value_strategy(), 0..50u64), 0..40),
        chunk_size in 1usize..10,
        reverse in any::<bool>(),
    ) {
        let snapshot = Snapshot {
            objects: objects
                .into_iter()
                .map(|(oid, (value, ts))| {
                    (ObjectId(oid), VersionedObject::installed(value, Ts(ts)))
                })
                .collect(),
        };
        let mut chunks = snapshot.chunks(chunk_size);
        if reverse {
            chunks.reverse();
        }
        let merged = Snapshot::from_chunks(chunks);
        prop_assert_eq!(merged, snapshot);
    }

    /// restore() makes two stores observationally identical.
    #[test]
    fn restore_replicates_state(
        objects in prop::collection::vec((0..100u64, any::<i64>(), 0..1000u64), 0..50),
    ) {
        let a = Store::with_shards(4);
        for (oid, v, ts) in &objects {
            a.install(ObjectId(*oid), Value::Int(*v), Ts(*ts));
        }
        let b = Store::with_shards(16);
        b.load_initial(ObjectId(9999), Value::Int(1)); // stale content
        b.restore(&a.snapshot());
        prop_assert_eq!(a.snapshot(), b.snapshot());
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.max_wts(), b.max_wts());
    }
}
