//! Off-line trace file generation and inspection.

use rodain_workload::{AccessPattern, Trace, TraceGenerator, TxnKind, WorkloadSpec};
use std::io::Write;
use std::path::Path;

/// Build a [`WorkloadSpec`] from parsed options (missing options keep the
/// paper defaults).
pub fn spec_from_args(args: &crate::Args) -> Result<WorkloadSpec, String> {
    let mut spec = WorkloadSpec {
        count: args.get_or("count", 10_000u64),
        db_objects: args.get_or("objects", 30_000u64),
        arrival_rate_tps: args.get_or("rate", 200.0f64),
        write_fraction: args.get_or("write-fraction", 0.2f64),
        non_rt_fraction: args.get_or("non-rt-fraction", 0.0f64),
        deadline_jitter: args.get_or("deadline-jitter", 0.0f64),
        read_deadline_ms: args.get_or("read-deadline-ms", 50u64),
        write_deadline_ms: args.get_or("write-deadline-ms", 150u64),
        reads_per_read_txn: args.get_or("reads", 4u32),
        reads_per_update_txn: args.get_or("updates", 2u32),
        seed: args.get_or("seed", 0x0DA1_2000u64),
        ..WorkloadSpec::default()
    };
    if let Some(hot) = args.options.get("hotspot") {
        // "--hotspot frac:prob", e.g. "--hotspot 0.01:0.8"
        let (frac, prob) = hot
            .split_once(':')
            .ok_or("--hotspot expects FRACTION:PROBABILITY")?;
        spec.access = AccessPattern::Hotspot {
            hot_fraction: frac.parse().map_err(|_| "bad hotspot fraction")?,
            hot_probability: prob.parse().map_err(|_| "bad hotspot probability")?,
        };
    }
    spec.validate()?;
    Ok(spec)
}

/// Generate the trace for `spec` and write it to `path`.
pub fn generate_to_file(spec: WorkloadSpec, path: &Path) -> std::io::Result<Trace> {
    let trace = TraceGenerator::new(spec).generate();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    trace.write_to(&mut file)?;
    file.flush()?;
    Ok(trace)
}

/// Human-readable statistics of a trace.
pub fn describe(trace: &Trace, out: &mut impl Write) -> std::io::Result<()> {
    let (mut reads, mut updates, mut non_rt) = (0u64, 0u64, 0u64);
    let mut objects_touched = 0u64;
    for r in &trace.requests {
        match r.kind {
            TxnKind::ReadOnly => reads += 1,
            TxnKind::Update => updates += 1,
            TxnKind::NonRealTime => non_rt += 1,
        }
        objects_touched += r.objects.len() as u64;
    }
    let duration_s = trace.duration_ns() as f64 / 1e9;
    writeln!(out, "transactions:      {}", trace.len())?;
    writeln!(
        out,
        "mix:               {reads} read-only / {updates} update / {non_rt} non-real-time"
    )?;
    writeln!(out, "update fraction:   {:.3}", trace.update_fraction())?;
    writeln!(out, "session duration:  {duration_s:.2} s")?;
    if duration_s > 0.0 {
        writeln!(
            out,
            "offered rate:      {:.1} tps",
            trace.len() as f64 / duration_s
        )?;
    }
    writeln!(
        out,
        "accesses:          {objects_touched} ({:.2} per txn)",
        objects_touched as f64 / trace.len().max(1) as f64
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Args;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults_are_paper_parameters() {
        let spec = spec_from_args(&args(&[])).unwrap();
        assert_eq!(spec.count, 10_000);
        assert_eq!(spec.db_objects, 30_000);
        assert_eq!(spec.read_deadline_ms, 50);
        assert_eq!(spec.write_deadline_ms, 150);
    }

    #[test]
    fn options_override() {
        let spec = spec_from_args(&args(&[
            "--rate",
            "300",
            "--write-fraction",
            "0.8",
            "--count",
            "500",
            "--hotspot",
            "0.01:0.9",
        ]))
        .unwrap();
        assert_eq!(spec.arrival_rate_tps, 300.0);
        assert_eq!(spec.write_fraction, 0.8);
        assert_eq!(spec.count, 500);
        assert!(matches!(spec.access, AccessPattern::Hotspot { .. }));
    }

    #[test]
    fn invalid_specs_are_reported() {
        assert!(spec_from_args(&args(&["--write-fraction", "1.7"])).is_err());
        assert!(spec_from_args(&args(&["--hotspot", "nonsense"])).is_err());
    }

    #[test]
    fn generate_and_reload() {
        let path =
            std::env::temp_dir().join(format!("rodain-tracegen-test-{}.trace", std::process::id()));
        let spec = spec_from_args(&args(&["--count", "100", "--rate", "500"])).unwrap();
        let trace = generate_to_file(spec, &path).unwrap();
        let reloaded =
            Trace::read_from(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        assert_eq!(reloaded, trace);
        let mut out = Vec::new();
        describe(&reloaded, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("transactions:      100"));
        let _ = std::fs::remove_file(&path);
    }
}
