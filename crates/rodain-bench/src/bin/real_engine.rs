//! REALENGINE: the Fig 3 saturation sweep run on the real threaded engine
//! (wall-clock, this machine) as a cross-check of the simulator's shapes.
//!
//! `cargo run -p rodain-bench --release --bin real_engine [-- --count N]`

use rodain_bench::experiments::{real_engine, SweepOptions};

fn main() {
    let table = real_engine(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("real_engine").unwrap());
}
