//! TCP transport with length-prefixed framing.

use crate::{NetError, Transport};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, TryRecvError};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on a frame accepted from the wire.
const MAX_WIRE_FRAME: u32 = 64 * 1024 * 1024;

/// Capacity of the inbound frame queue before the reader applies
/// backpressure by stalling the socket.
const INBOUND_QUEUE: usize = 16 * 1024;

/// A [`Transport`] over a TCP connection.
///
/// Wire format: `u32` little-endian length followed by the frame bytes.
/// A background reader thread deframes the socket into a bounded queue;
/// sends go directly to the socket under a mutex (writes are small and the
/// log stream is produced by a single log-writer thread in practice).
pub struct TcpTransport {
    writer: Mutex<TcpStream>,
    inbound: Receiver<Bytes>,
    connected: Arc<AtomicBool>,
    peer: SocketAddr,
}

impl TcpTransport {
    /// Connect to a listening peer.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Accept one inbound connection on `listener`.
    pub fn accept(listener: &TcpListener) -> Result<Self, NetError> {
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let reader_stream = stream.try_clone()?;
        let (tx, rx) = bounded(INBOUND_QUEUE);
        let connected = Arc::new(AtomicBool::new(true));
        let connected_reader = Arc::clone(&connected);
        std::thread::Builder::new()
            .name(format!("rodain-net-reader-{peer}"))
            .spawn(move || {
                let mut stream = reader_stream;
                let mut len_buf = [0u8; 4];
                loop {
                    if stream.read_exact(&mut len_buf).is_err() {
                        break;
                    }
                    let len = u32::from_le_bytes(len_buf);
                    if len > MAX_WIRE_FRAME {
                        break;
                    }
                    let mut frame = vec![0u8; len as usize];
                    if stream.read_exact(&mut frame).is_err() {
                        break;
                    }
                    if tx.send(Bytes::from(frame)).is_err() {
                        break;
                    }
                }
                connected_reader.store(false, Ordering::Release);
            })
            .expect("spawn tcp reader");
        Ok(TcpTransport {
            writer: Mutex::new(stream),
            inbound: rx,
            connected,
            peer,
        })
    }

    /// The peer's socket address.
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }
}

impl Transport for TcpTransport {
    fn send(&self, frame: Bytes) -> Result<(), NetError> {
        if !self.connected.load(Ordering::Acquire) {
            return Err(NetError::Disconnected);
        }
        let mut writer = self.writer.lock();
        let len = (frame.len() as u32).to_le_bytes();
        let result = writer
            .write_all(&len)
            .and_then(|()| writer.write_all(&frame));
        match result {
            Ok(()) => Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::BrokenPipe
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                self.connected.store(false, Ordering::Release);
                Err(NetError::Disconnected)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NetError> {
        if timeout.is_zero() {
            return self.try_recv();
        }
        match self.inbound.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => {
                if self.connected.load(Ordering::Acquire) {
                    Ok(None)
                } else {
                    Err(NetError::Disconnected)
                }
            }
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NetError> {
        match self.inbound.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => {
                if self.connected.load(Ordering::Acquire) {
                    Ok(None)
                } else {
                    Err(NetError::Disconnected)
                }
            }
            Err(TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Acquire)
    }

    fn close(&self) {
        self.connected.store(false, Ordering::Release);
        let writer = self.writer.lock();
        let _ = writer.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TcpTransport, TcpTransport) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpTransport::connect(addr).unwrap());
        let server = TcpTransport::accept(&listener).unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn roundtrip_over_loopback() {
        let (server, client) = pair();
        client.send(Bytes::from_static(b"hello")).unwrap();
        let got = server
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"hello"));
        server.send(Bytes::from_static(b"world")).unwrap();
        let got = client
            .recv_timeout(Duration::from_secs(2))
            .unwrap()
            .unwrap();
        assert_eq!(got, Bytes::from_static(b"world"));
    }

    #[test]
    fn large_frames_survive() {
        let (server, client) = pair();
        let big = Bytes::from(vec![0xA5u8; 1_000_000]);
        client.send(big.clone()).unwrap();
        let got = server
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(got, big);
    }

    #[test]
    fn many_small_frames_in_order() {
        let (server, client) = pair();
        for i in 0..500u32 {
            client.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..500u32 {
            let got = server
                .recv_timeout(Duration::from_secs(2))
                .unwrap()
                .unwrap();
            assert_eq!(u32::from_le_bytes(got[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn close_surfaces_as_disconnect() {
        let (server, client) = pair();
        client.close();
        // The server eventually observes the disconnect.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match server.recv_timeout(Duration::from_millis(20)) {
                Err(NetError::Disconnected) => break,
                Ok(None) | Ok(Some(_)) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "disconnect not observed"
                    );
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert!(matches!(
            client.send(Bytes::new()),
            Err(NetError::Disconnected) | Err(NetError::Io(_))
        ));
    }
}
