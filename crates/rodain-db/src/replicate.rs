//! Commit-path replication: mirror shipping, contingency disk, volatile.
//!
//! Mirrored mode runs a dedicated **shipper thread** (DESIGN.md §12):
//! workers enqueue validated commit groups, the shipper restores dense CSN
//! order through a holdback buffer and coalesces consecutive groups into
//! bounded multi-record `Records` frames. Because every frame carries a
//! contiguous CSN run over an ordered transport, the mirror acknowledges
//! only the **highest** commit CSN per frame and the primary resolves every
//! pending ticket at or below it — one ack per frame instead of one per
//! commit.

use crate::error::TxnError;
use crate::options::{DurabilityTier, MirrorLossPolicy};
use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rodain_log::{GroupCommitLog, LogRecord, LogStorage, LogStorageConfig, StorageBackend};
use rodain_net::{NetError, Transport};
use rodain_node::Message;
use rodain_obs::{Counter, Gauge, Histogram, Recorder};
use rodain_occ::Csn;
use rodain_store::FxHashMap;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Attempts for one frame before the link is declared dead. Only
/// [`NetError::Io`] is retried — `Disconnected` is permanent under the
/// crash-stop transport contract.
const SEND_ATTEMPTS: u32 = 3;

/// Initial backoff between send retries (doubles per attempt).
const SEND_BACKOFF: Duration = Duration::from_micros(100);

/// Shipper wake-up period while idle (also bounds how quickly a mark-down
/// triggered elsewhere drains the shipper's own backlog).
const SHIP_POLL: Duration = Duration::from_millis(20);

/// Send `frame`, retrying transient I/O errors with exponential backoff.
/// The frame is encoded once by the caller; retries clone the cheap
/// refcounted [`Bytes`] handle, never re-encode.
fn send_with_retry(transport: &dyn Transport, frame: Bytes) -> Result<(), NetError> {
    let mut backoff = SEND_BACKOFF;
    let mut attempt = 1;
    loop {
        match transport.send(frame.clone()) {
            Ok(()) => return Ok(()),
            // Crash-stop: the peer is gone for good; retrying is useless.
            Err(NetError::Disconnected) => return Err(NetError::Disconnected),
            Err(err @ NetError::Io(_)) => {
                if attempt >= SEND_ATTEMPTS {
                    return Err(err);
                }
                attempt += 1;
                std::thread::sleep(backoff);
                backoff *= 2;
            }
        }
    }
}

/// Batching knobs for the mirrored-mode shipper thread.
///
/// A frame closes when it holds `max_records` log records or `max_bytes`
/// of (approximate) payload, whichever comes first; a single commit group
/// larger than either bound still ships alone in one frame. `max_delay`
/// is how long the shipper holds an open batch waiting for more commits —
/// the default `0` only coalesces what is already queued (opportunistic
/// batching), so an isolated commit never waits on the knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShipBatchConfig {
    /// Most log records per shipped frame (min 1).
    pub max_records: usize,
    /// Approximate payload-byte bound per shipped frame (min 1).
    pub max_bytes: usize,
    /// How long an open batch may wait for further commit groups.
    pub max_delay: Duration,
}

impl Default for ShipBatchConfig {
    fn default() -> Self {
        ShipBatchConfig {
            max_records: 512,
            max_bytes: 1 << 20,
            max_delay: Duration::ZERO,
        }
    }
}

impl ShipBatchConfig {
    /// One commit group per frame — the pre-batching wire behaviour,
    /// used as the baseline in the COMMITPIPE experiment.
    #[must_use]
    pub fn unbatched() -> Self {
        ShipBatchConfig {
            max_records: 1,
            ..ShipBatchConfig::default()
        }
    }

    fn normalized(self) -> Self {
        ShipBatchConfig {
            max_records: self.max_records.max(1),
            max_bytes: self.max_bytes.max(1),
            max_delay: self.max_delay,
        }
    }
}

/// The engine's current durability/replication mode (observable status).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationMode {
    /// No durability: commits complete at validation.
    Volatile,
    /// Single node: synchronous group-commit to the local disk.
    Contingency,
    /// Primary + live mirror: the mirror's commit acknowledgement gates
    /// the commit.
    Mirrored,
}

impl ReplicationMode {
    /// Stable numeric encoding published as the `replication_mode` gauge
    /// (see `METRICS.md`): 0 = Volatile, 1 = Contingency, 2 = Mirrored.
    #[must_use]
    pub fn as_gauge(self) -> i64 {
        match self {
            ReplicationMode::Volatile => 0,
            ReplicationMode::Contingency => 1,
            ReplicationMode::Mirrored => 2,
        }
    }
}

/// A commit ticket: resolves when the commit group is durable/acknowledged,
/// carrying the [`DurabilityTier`] the resolution actually achieved (mirror
/// ack → `MirrorAcked`, local group flush → `DiskFsynced`, degraded with no
/// fallback → `Volatile`).
pub(crate) type CommitTicket = Receiver<Result<DurabilityTier, TxnError>>;

fn resolved(result: Result<DurabilityTier, TxnError>) -> CommitTicket {
    let (tx, rx) = bounded(1);
    let _ = tx.send(result);
    rx
}

pub(crate) enum Replicator {
    Volatile,
    Contingency(GroupCommitLog),
    Mirrored(MirrorLink),
}

/// Default commit requests coalesced per group-commit flush.
pub(crate) const GROUP_COMMIT_BATCH: usize = 64;

impl Replicator {
    pub(crate) fn contingency(
        dir: &std::path::Path,
        rec: &Recorder,
        max_batch: usize,
    ) -> std::io::Result<Replicator> {
        let storage = LogStorage::open(LogStorageConfig::new(dir))?;
        Ok(Replicator::Contingency(GroupCommitLog::spawn_observed(
            storage, max_batch, rec,
        )))
    }

    /// Contingency mode over a pre-built storage backend (the chaos harness
    /// injects a fault-wrapping backend here).
    pub(crate) fn contingency_backend(
        backend: Box<dyn StorageBackend>,
        rec: &Recorder,
        max_batch: usize,
    ) -> Replicator {
        Replicator::Contingency(GroupCommitLog::spawn_dyn_observed(backend, max_batch, rec))
    }

    /// A commit ticket timed out. In mirrored mode with the link still
    /// nominally up, declare the mirror dead: close the transport (so the
    /// peer's watchdog fires promptly) and fail every pending commit over
    /// to the fallback — the caller then re-awaits its ticket, which
    /// resolves through the degraded path. Returns whether a failover was
    /// actually triggered.
    pub(crate) fn note_gate_timeout(&self) -> bool {
        match self {
            Replicator::Mirrored(link) if !link.is_down() => {
                link.mark_down();
                true
            }
            _ => false,
        }
    }

    pub(crate) fn mode(&self) -> ReplicationMode {
        match self {
            Replicator::Volatile => ReplicationMode::Volatile,
            Replicator::Contingency(_) => ReplicationMode::Contingency,
            Replicator::Mirrored(link) if link.is_down() => match link.shared.fallback {
                Some(_) => ReplicationMode::Contingency,
                None => ReplicationMode::Volatile,
            },
            Replicator::Mirrored(_) => ReplicationMode::Mirrored,
        }
    }

    /// Checkpoint support: truncate the local disk log below `upto` (only
    /// meaningful when a local log exists), keeping the newest `retain`
    /// otherwise-deletable segments. Returns removed segment count.
    pub(crate) fn truncate_before_retaining(
        &self,
        upto: Csn,
        retain: usize,
    ) -> std::io::Result<usize> {
        match self {
            Replicator::Contingency(group) => group.truncate_before_retaining(upto, retain),
            Replicator::Mirrored(link) => match &link.shared.fallback {
                Some(group) => group.truncate_before_retaining(upto, retain),
                None => Ok(0),
            },
            Replicator::Volatile => Ok(0),
        }
    }

    /// Highest commit CSN the live mirror has acknowledged — the
    /// checkpointer's truncation fence. `None` when no live mirror exists
    /// (volatile/contingency modes, or a mirrored link already marked
    /// down), in which case the local log is the only copy and truncation
    /// is bounded by the checkpoint boundary alone.
    pub(crate) fn ack_watermark(&self) -> Option<u64> {
        match self {
            Replicator::Mirrored(link) if !link.is_down() => Some(link.ack_watermark()),
            _ => None,
        }
    }

    /// Bytes the local disk log currently occupies, when one exists — the
    /// checkpointer's `log_bytes_trigger` input and the `log_on_disk_bytes`
    /// gauge source.
    pub(crate) fn log_on_disk_bytes(&self) -> Option<u64> {
        let group: &GroupCommitLog = match self {
            Replicator::Contingency(group) => group,
            Replicator::Mirrored(link) => link.shared.fallback.as_deref()?,
            Replicator::Volatile => return None,
        };
        group.storage_stats().ok().map(|s| s.on_disk_bytes)
    }

    /// Append an informational record (checkpoint marker) without gating a
    /// commit on it. Bypasses the shipper: info records carry no CSN and
    /// must not occupy a slot in the CSN-ordered holdback.
    pub(crate) fn append_info(&self, record: LogRecord) {
        match self {
            Replicator::Contingency(group) => {
                let _ = group.append_async(vec![record]);
            }
            Replicator::Mirrored(link) => {
                if !link.is_down() {
                    let _ = send_with_retry(
                        link.shared.transport.as_ref(),
                        Message::Records(vec![record]).encode(),
                    );
                } else if let Some(group) = &link.shared.fallback {
                    let _ = group.append_async(vec![record]);
                }
            }
            Replicator::Volatile => {}
        }
    }

    /// Ship a commit group; the ticket resolves when the transaction may
    /// report success to the client at the requested [`DurabilityTier`]
    /// (or the strongest tier this mode can actually deliver). Every
    /// commit group ships regardless of tier — cumulative highest-CSN
    /// acks require dense CSNs on the wire — the tier only decides which
    /// gate the ticket waits for.
    pub(crate) fn ship(
        &self,
        csn: Csn,
        records: Vec<LogRecord>,
        tier: DurabilityTier,
    ) -> CommitTicket {
        match self {
            Replicator::Volatile => resolved(Ok(DurabilityTier::Volatile)),
            Replicator::Contingency(group) => {
                if tier == DurabilityTier::Volatile {
                    // Volatile tier skips the flush wait: the records join
                    // the log writer's queue and ride a later flush.
                    return resolved(
                        group
                            .append_async(records)
                            .map(|()| DurabilityTier::Volatile)
                            .map_err(|e| TxnError::Replication(e.to_string())),
                    );
                }
                // Synchronous local disk: the log writer thread batches
                // concurrent committers into one flush (group commit).
                resolved(
                    group
                        .commit_sync(records)
                        .map(|()| DurabilityTier::DiskFsynced)
                        .map_err(|e| TxnError::Replication(e.to_string())),
                )
            }
            Replicator::Mirrored(link) => link.ship(csn, records, tier),
        }
    }

    /// Synchronously flush the local disk log, if this mode has one — how
    /// the completer upgrades a mirror-acked commit to
    /// [`DurabilityTier::DiskFsynced`] (its records were appended to the
    /// fallback at ship time; the flush covers them). `None` when no local
    /// log exists and the upgrade is impossible.
    pub(crate) fn fsync_local(&self) -> Option<Result<(), TxnError>> {
        let group: &GroupCommitLog = match self {
            Replicator::Contingency(group) => group,
            Replicator::Mirrored(link) => link.shared.fallback.as_deref()?,
            Replicator::Volatile => return None,
        };
        Some(
            group
                .flush_sync()
                .map_err(|e| TxnError::Replication(e.to_string())),
        )
    }
}

struct PendingCommit {
    records: Vec<LogRecord>,
    done: Sender<Result<DurabilityTier, TxnError>>,
    /// When the commit group left the primary — the ack's arrival closes
    /// the `mirror_ship_rtt_ns` measurement.
    sent_at: Instant,
    /// The records were already appended to the fallback log at ship time
    /// (a `DiskFsynced`-tier commit): the degraded path must flush, not
    /// append again — a duplicate CSN in the log would replay twice.
    on_disk: bool,
}

/// A validated commit group queued for the shipper thread.
struct ShipRequest {
    csn: u64,
    records: Vec<LogRecord>,
    done: Sender<Result<DurabilityTier, TxnError>>,
    /// See [`PendingCommit::on_disk`].
    on_disk: bool,
}

/// State shared between the [`MirrorLink`] handle, the ack-reader thread
/// and the shipper thread.
struct LinkShared {
    transport: Arc<dyn Transport>,
    /// In-flight commits by CSN, registered by the shipper *before* the
    /// frame is sent. FxHash: small dense integer keys on the hot path.
    pending: Mutex<FxHashMap<u64, PendingCommit>>,
    down: AtomicBool,
    /// Highest commit CSN the mirror has acknowledged. Checkpoint
    /// truncation is fenced on it: a log segment may only be deleted once
    /// the mirror's acknowledged prefix has passed every commit in it, so
    /// each GC'd commit has two independent surviving copies (snapshot on
    /// primary disk, applied state on the mirror). Starts at
    /// `start_csn - 1`: the snapshot handshake proved the mirror holds
    /// everything below the stream start.
    ack_watermark: AtomicU64,
    /// Pre-opened contingency log used if/when the mirror dies.
    fallback: Option<Arc<GroupCommitLog>>,
    /// Commit acknowledgements — counted per *commit* resolved, so one
    /// coalesced frame ack moves it by the whole batch.
    acks: Counter,
    /// Degraded-mode value the `replication_mode` gauge takes on failover.
    mode_gauge: Gauge,
    rec: Recorder,
    stop: AtomicBool,
}

impl LinkShared {
    fn degraded_mode(&self) -> ReplicationMode {
        match self.fallback {
            Some(_) => ReplicationMode::Contingency,
            None => ReplicationMode::Volatile,
        }
    }

    /// Resolve one commit group through the degraded path. Returns the
    /// tier the degraded resolution achieves: `DiskFsynced` through the
    /// fallback log, `Volatile` when there is none — the receipt reports
    /// it either way.
    fn degraded_result(
        &self,
        records: Vec<LogRecord>,
        on_disk: bool,
    ) -> Result<DurabilityTier, TxnError> {
        match &self.fallback {
            Some(group) => {
                let flushed = if on_disk {
                    // Already appended at ship time; only the flush is owed.
                    group.flush_sync()
                } else {
                    group.commit_sync(records)
                };
                flushed
                    .map(|()| DurabilityTier::DiskFsynced)
                    .map_err(|e| TxnError::Replication(e.to_string()))
            }
            None => Ok(DurabilityTier::Volatile),
        }
    }

    /// Resolve every pending commit through the fallback (or as plain
    /// volatile success when there is none).
    fn drain_pending(&self) {
        let drained: Vec<PendingCommit> = {
            let mut map = self.pending.lock();
            map.drain().map(|(_, p)| p).collect()
        };
        for p in drained {
            let result = self.degraded_result(p.records, p.on_disk);
            let _ = p.done.send(result);
        }
    }

    /// Declare the mirror dead: fail every pending commit over to the
    /// fallback and close the transport so the peer (if it is actually
    /// alive, e.g. it stopped acking because a corrupted frame was
    /// rejected) observes the disconnect and exits. Idempotent. The
    /// shipper notices `down` at its next wake-up and drains its own
    /// holdback/queue the same way.
    fn mark_down(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        let degraded = self.degraded_mode();
        self.mode_gauge.set(degraded.as_gauge());
        self.rec.emit(
            "mirror-down",
            format!("marked down; degrading to {degraded:?}"),
        );
        self.transport.close();
        self.drain_pending();
    }
}

/// The primary's side of the log-shipping protocol.
pub(crate) struct MirrorLink {
    shared: Arc<LinkShared>,
    ship_tx: Sender<ShipRequest>,
    ack_thread: Option<std::thread::JoinHandle<()>>,
    ship_thread: Option<std::thread::JoinHandle<()>>,
}

impl MirrorLink {
    /// Wire up a link over `transport` (the snapshot handshake has already
    /// completed; the live stream resumes at `start_csn`). `loss_policy`
    /// decides the degraded mode; `batch` bounds the shipper's frames.
    /// Publishes `mirror_ship_rtt_ns`, `mirror_acks_total`,
    /// `ship_batch_records`/`ship_batch_bytes` and keeps the
    /// `replication_mode` gauge honest through failover (see `METRICS.md`).
    pub(crate) fn new(
        transport: Arc<dyn Transport>,
        loss_policy: &MirrorLossPolicy,
        rec: &Recorder,
        start_csn: Csn,
        batch: ShipBatchConfig,
    ) -> std::io::Result<MirrorLink> {
        let fallback = match loss_policy {
            MirrorLossPolicy::Contingency { dir, segment_bytes } => {
                let mut cfg = LogStorageConfig::new(dir);
                if let Some(bytes) = segment_bytes {
                    cfg.segment_bytes = *bytes;
                }
                let storage = LogStorage::open(cfg)?;
                Some(Arc::new(GroupCommitLog::spawn_observed(
                    storage,
                    GROUP_COMMIT_BATCH,
                    rec,
                )))
            }
            MirrorLossPolicy::ContinueVolatile => None,
        };
        let shared = Arc::new(LinkShared {
            transport,
            pending: Mutex::new(FxHashMap::default()),
            down: AtomicBool::new(false),
            ack_watermark: AtomicU64::new(start_csn.0.saturating_sub(1)),
            fallback,
            acks: rec.counter("mirror_acks_total"),
            mode_gauge: rec.gauge("replication_mode"),
            rec: rec.clone(),
            stop: AtomicBool::new(false),
        });

        let rtt = rec.histogram("mirror_ship_rtt_ns");
        let ack_shared = Arc::clone(&shared);
        let ack_thread = std::thread::Builder::new()
            .name("rodain-ack-reader".into())
            .spawn(move || ack_loop(&ack_shared, &rtt))
            .expect("spawn ack reader");

        let (ship_tx, ship_rx) = unbounded();
        let shipper = Shipper {
            shared: Arc::clone(&shared),
            queue: ship_rx,
            holdback: BTreeMap::new(),
            next_csn: start_csn.0,
            batch: batch.normalized(),
            batch_records: rec.histogram("ship_batch_records"),
            batch_bytes: rec.histogram("ship_batch_bytes"),
        };
        let ship_thread = std::thread::Builder::new()
            .name("rodain-shipper".into())
            .spawn(move || shipper.run())
            .expect("spawn shipper");

        Ok(MirrorLink {
            shared,
            ship_tx,
            ack_thread: Some(ack_thread),
            ship_thread: Some(ship_thread),
        })
    }

    pub(crate) fn is_down(&self) -> bool {
        self.shared.down.load(Ordering::Acquire)
    }

    /// See [`LinkShared::mark_down`].
    pub(crate) fn mark_down(&self) {
        self.shared.mark_down();
    }

    /// Commit acknowledgements received (per commit, not per ack frame).
    pub(crate) fn acks(&self) -> u64 {
        self.shared.acks.get()
    }

    /// See [`LinkShared::ack_watermark`].
    pub(crate) fn ack_watermark(&self) -> u64 {
        self.shared.ack_watermark.load(Ordering::Acquire)
    }

    fn ship_degraded(&self, records: Vec<LogRecord>, on_disk: bool) -> CommitTicket {
        resolved(self.shared.degraded_result(records, on_disk))
    }

    fn ship(&self, csn: Csn, records: Vec<LogRecord>, tier: DurabilityTier) -> CommitTicket {
        if self.is_down() {
            return self.ship_degraded(records, false);
        }
        // A DiskFsynced request also appends to the fallback log *before*
        // shipping: the mirror ack then only owes a local flush (the
        // completer's `fsync_local` upgrade), and a mark-down drain flushes
        // instead of re-appending (`on_disk`). Without a fallback the
        // strongest deliverable tier is MirrorAcked — the receipt says so.
        let mut on_disk = false;
        if tier == DurabilityTier::DiskFsynced {
            if let Some(group) = &self.shared.fallback {
                match group.append_async(records.clone()) {
                    Ok(()) => on_disk = true,
                    Err(e) => {
                        // The local log is broken, so the tier is
                        // unachievable — but the group must still ship to
                        // keep wire CSNs dense for cumulative acks. Ship
                        // with a throwaway ticket and fail the commit.
                        let (done, _drop_rx) = bounded(1);
                        let _ = self.ship_tx.send(ShipRequest {
                            csn: csn.0,
                            records,
                            done,
                            on_disk: false,
                        });
                        return resolved(Err(TxnError::Replication(e.to_string())));
                    }
                }
            }
        }
        let (done, rx) = bounded(1);
        match self.ship_tx.send(ShipRequest {
            csn: csn.0,
            records,
            done,
            on_disk,
        }) {
            Ok(()) => rx,
            // Shipper already stopped (link torn down mid-call): the
            // request still owns its records, resolve it right here.
            Err(send_err) => self.ship_degraded(send_err.0.records, on_disk),
        }
    }
}

impl Drop for MirrorLink {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.transport.close();
        if let Some(handle) = self.ship_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.ack_thread.take() {
            let _ = handle.join();
        }
        // Anything sent but never acked resolves through the degraded
        // path rather than leaving its committer to hit the gate timeout.
        self.shared.drain_pending();
    }
}

/// Reads mirror acks and feeds the peer's watchdog. One `CommitAck{csn}`
/// resolves **every** pending ticket at or below `csn`: the shipper only
/// emits contiguous CSN runs in order, so an ack for a frame's highest
/// CSN proves receipt of everything before it.
fn ack_loop(shared: &LinkShared, rtt: &Histogram) {
    let mut hb_seq = 0u64;
    let mut last_hb = Instant::now();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match shared.transport.recv_timeout(Duration::from_millis(20)) {
            Ok(Some(frame)) => {
                if let Ok(Message::CommitAck { csn, .. }) = Message::decode(frame) {
                    shared.ack_watermark.fetch_max(csn.0, Ordering::AcqRel);
                    let batch: Vec<PendingCommit> = {
                        let mut map = shared.pending.lock();
                        let keys: Vec<u64> = map.keys().filter(|k| **k <= csn.0).copied().collect();
                        keys.into_iter().filter_map(|k| map.remove(&k)).collect()
                    };
                    shared.acks.add(batch.len() as u64);
                    for p in batch {
                        rtt.record_elapsed(p.sent_at);
                        let _ = p.done.send(Ok(DurabilityTier::MirrorAcked));
                    }
                }
                // Heartbeats and anything else just prove liveness,
                // which recv success already did.
            }
            Ok(None) => {}
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    return; // orderly teardown, not a mirror failure
                }
                shared.mark_down();
                return;
            }
        }
        // Keep the mirror's watchdog fed while idle.
        if last_hb.elapsed() >= Duration::from_millis(50) {
            last_hb = Instant::now();
            hb_seq += 1;
            let _ = shared
                .transport
                .send(Message::Heartbeat { seq: hb_seq }.encode());
        }
    }
}

/// The dedicated shipper thread's state.
///
/// Workers finish validation (and thus learn their CSN) in nondeterministic
/// order, but cumulative acks are only sound if the wire carries CSNs in
/// dense order. The holdback map buffers early arrivals; frames always ship
/// the contiguous run starting at `next_csn`. Every assigned CSN reaches
/// [`Replicator::ship`] (commit groups are built under the commit gate
/// immediately after validation), so a gap is only ever a few microseconds
/// of scheduling — and if a committer dies mid-gap, the engine's
/// gate-timeout → mark-down backstop drains everything here degraded.
struct Shipper {
    shared: Arc<LinkShared>,
    queue: Receiver<ShipRequest>,
    holdback: BTreeMap<u64, ShipRequest>,
    next_csn: u64,
    batch: ShipBatchConfig,
    batch_records: Histogram,
    batch_bytes: Histogram,
}

impl Shipper {
    fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::Acquire) {
                self.drain_all();
                return;
            }
            match self.queue.recv_timeout(SHIP_POLL) {
                Ok(req) => {
                    self.admit(req);
                    // Opportunistic coalescing: whatever is already queued
                    // joins this frame for free.
                    while let Ok(more) = self.queue.try_recv() {
                        self.admit(more);
                    }
                    if !self.batch.max_delay.is_zero() {
                        self.wait_for_more();
                    }
                    self.flush_ready();
                }
                Err(RecvTimeoutError::Timeout) => self.flush_ready(),
                Err(RecvTimeoutError::Disconnected) => {
                    self.drain_all();
                    return;
                }
            }
        }
    }

    fn admit(&mut self, req: ShipRequest) {
        if self.shared.down.load(Ordering::Acquire) {
            let result = self.shared.degraded_result(req.records, req.on_disk);
            let _ = req.done.send(result);
        } else {
            self.holdback.insert(req.csn, req);
        }
    }

    /// Number of records in the contiguous run currently ready to ship.
    fn ready_records(&self) -> usize {
        let mut expect = self.next_csn;
        let mut n = 0;
        for (&csn, req) in &self.holdback {
            if csn != expect {
                break;
            }
            n += req.records.len();
            expect += 1;
        }
        n
    }

    /// Hold the open batch up to `max_delay` hoping for more commits.
    fn wait_for_more(&mut self) {
        let deadline = Instant::now() + self.batch.max_delay;
        while self.ready_records() < self.batch.max_records {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.queue.recv_timeout(deadline - now) {
                Ok(req) => self.admit(req),
                Err(_) => break,
            }
        }
    }

    /// Ship every contiguous CSN run at the head of the holdback, split
    /// into frames bounded by the batch knobs.
    fn flush_ready(&mut self) {
        if self.shared.down.load(Ordering::Acquire) {
            self.drain_all();
            return;
        }
        loop {
            let mut reqs: Vec<ShipRequest> = Vec::new();
            let mut n_records = 0usize;
            let mut approx_bytes = 0usize;
            while let Some((&csn, req)) = self.holdback.iter().next() {
                if csn != self.next_csn {
                    break;
                }
                if !reqs.is_empty()
                    && (n_records >= self.batch.max_records || approx_bytes >= self.batch.max_bytes)
                {
                    break;
                }
                n_records += req.records.len();
                approx_bytes += req
                    .records
                    .iter()
                    .map(|r| 8 + r.approx_size())
                    .sum::<usize>();
                let req = self.holdback.remove(&csn).expect("head entry exists");
                self.next_csn += 1;
                reqs.push(req);
            }
            if reqs.is_empty() {
                return;
            }
            self.send_batch(reqs, n_records, approx_bytes);
            if self.shared.down.load(Ordering::Acquire) {
                self.drain_all();
                return;
            }
        }
    }

    /// Encode one frame for the batch, register every ticket in the
    /// pending map *before* the send (an ack must never race a ticket that
    /// is not yet registered), then ship it.
    fn send_batch(&mut self, reqs: Vec<ShipRequest>, n_records: usize, approx_bytes: usize) {
        let groups: Vec<&[LogRecord]> = reqs.iter().map(|r| r.records.as_slice()).collect();
        let frame = Message::encode_record_groups(&groups, 5 + approx_bytes);
        self.batch_records.record(n_records as u64);
        self.batch_bytes.record(frame.len() as u64);
        let sent_at = Instant::now();
        {
            let mut pending = self.shared.pending.lock();
            for req in reqs {
                pending.insert(
                    req.csn,
                    PendingCommit {
                        records: req.records,
                        done: req.done,
                        sent_at,
                        on_disk: req.on_disk,
                    },
                );
            }
        }
        if send_with_retry(self.shared.transport.as_ref(), frame).is_err() {
            // mark_down drains the pending map, including the tickets
            // registered just above.
            self.shared.mark_down();
        }
    }

    /// Resolve the whole backlog (holdback + queue) through the degraded
    /// path. Used on mark-down and teardown so no ticket is ever orphaned.
    fn drain_all(&mut self) {
        let held = std::mem::take(&mut self.holdback);
        for (_, req) in held {
            let result = self.shared.degraded_result(req.records, req.on_disk);
            let _ = req.done.send(result);
        }
        while let Ok(req) = self.queue.try_recv() {
            let result = self.shared.degraded_result(req.records, req.on_disk);
            let _ = req.done.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodain_log::{Lsn, RecordKind};
    use rodain_net::InProcTransport;
    use rodain_store::{Ts, TxnId};

    fn commit_group(csn: u64) -> Vec<LogRecord> {
        vec![LogRecord {
            lsn: Lsn(csn * 2),
            txn: TxnId(100 + csn),
            kind: RecordKind::Commit {
                csn: Csn(csn),
                ser_ts: Ts(csn << 20),
                n_writes: 0,
            },
        }]
    }

    fn mirrored_link(start: u64) -> (MirrorLink, Arc<InProcTransport>) {
        let (primary_side, mirror_side) = InProcTransport::pair();
        let link = MirrorLink::new(
            Arc::new(primary_side),
            &MirrorLossPolicy::ContinueVolatile,
            &Recorder::default(),
            Csn(start),
            ShipBatchConfig::default(),
        )
        .unwrap();
        (link, Arc::new(mirror_side))
    }

    /// Pull frames off the mirror side until a `Records` frame arrives;
    /// heartbeats are skipped.
    fn next_records(mirror: &InProcTransport) -> Vec<LogRecord> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            assert!(Instant::now() < deadline, "no Records frame arrived");
            if let Ok(Some(frame)) = mirror.recv_timeout(Duration::from_millis(50)) {
                if let Ok(Message::Records(records)) = Message::decode(frame) {
                    return records;
                }
            }
        }
    }

    #[test]
    fn single_highest_csn_ack_resolves_every_ticket_in_the_frame() {
        let (link, mirror) = mirrored_link(1);
        // Ship CSNs 1..=4 in order; the shipper coalesces them into one
        // or more contiguous frames.
        let tickets: Vec<CommitTicket> = (1..=4)
            .map(|c| link.ship(Csn(c), commit_group(c), DurabilityTier::MirrorAcked))
            .collect();
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(next_records(&mirror));
        }
        assert_eq!(got.len(), 4);
        // One ack for the highest CSN — no per-commit acks.
        mirror
            .send(
                Message::CommitAck {
                    txn: TxnId(104),
                    csn: Csn(4),
                }
                .encode(),
            )
            .unwrap();
        for t in &tickets {
            assert_eq!(
                t.recv_timeout(Duration::from_secs(5)).unwrap(),
                Ok(DurabilityTier::MirrorAcked),
                "a coalesced ack must resolve every ticket at or below it"
            );
        }
        assert_eq!(link.acks(), 4, "acks count commits, not frames");
        assert!(!link.is_down());
    }

    #[test]
    fn out_of_order_ship_calls_are_reordered_and_partial_acks_resolve_prefixes() {
        let (link, mirror) = mirrored_link(1);
        // Workers can reach ship() out of CSN order; the holdback must
        // restore dense order before anything hits the wire.
        let t3 = link.ship(Csn(3), commit_group(3), DurabilityTier::MirrorAcked);
        let t1 = link.ship(Csn(1), commit_group(1), DurabilityTier::MirrorAcked);
        let t2 = link.ship(Csn(2), commit_group(2), DurabilityTier::MirrorAcked);
        let mut got = Vec::new();
        while got.len() < 3 {
            got.extend(next_records(&mirror));
        }
        let csns: Vec<u64> = got
            .iter()
            .filter_map(|r| match r.kind {
                RecordKind::Commit { csn, .. } => Some(csn.0),
                _ => None,
            })
            .collect();
        assert_eq!(csns, vec![1, 2, 3], "wire order must be dense CSN order");

        // A partial ack (csn 2) resolves exactly the prefix.
        mirror
            .send(
                Message::CommitAck {
                    txn: TxnId(102),
                    csn: Csn(2),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            t1.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::MirrorAcked)
        );
        assert_eq!(
            t2.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::MirrorAcked)
        );
        assert!(
            t3.recv_timeout(Duration::from_millis(100)).is_err(),
            "csn 3 must stay pending past a partial ack"
        );
        assert_eq!(link.acks(), 2);

        mirror
            .send(
                Message::CommitAck {
                    txn: TxnId(103),
                    csn: Csn(3),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            t3.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::MirrorAcked)
        );
        assert_eq!(link.acks(), 3);
    }

    #[test]
    fn mark_down_resolves_holdback_and_pending_tickets() {
        let (link, mirror) = mirrored_link(1);
        // CSN 3 with the CSN-2 gap never filled: stuck in the holdback,
        // never reaching the wire.
        let stuck = link.ship(Csn(3), commit_group(3), DurabilityTier::MirrorAcked);
        // CSN 1 ships alone, but the mirror never acks it.
        let sent = link.ship(Csn(1), commit_group(1), DurabilityTier::MirrorAcked);
        let first = next_records(&mirror);
        assert_eq!(first.len(), 1, "csn 3 must be held back across the gap");
        assert!(stuck.recv_timeout(Duration::from_millis(50)).is_err());

        // Gate-timeout path: the engine marks the link down. Every ticket
        // — pending-on-ack and held-back alike — must resolve promptly.
        link.mark_down();
        assert_eq!(
            sent.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::Volatile),
            "ContinueVolatile fallback resolves pending tickets as volatile success"
        );
        assert_eq!(
            stuck.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::Volatile)
        );
        assert!(link.is_down());
        // Later ships resolve degraded without touching the dead link.
        let late = link.ship(Csn(4), commit_group(4), DurabilityTier::MirrorAcked);
        assert_eq!(
            late.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::Volatile)
        );
    }

    #[test]
    fn ack_watermark_tracks_highest_acknowledged_csn() {
        let (link, mirror) = mirrored_link(5);
        // The snapshot handshake covered everything below the stream start.
        assert_eq!(link.ack_watermark(), 4);
        let t5 = link.ship(Csn(5), commit_group(5), DurabilityTier::MirrorAcked);
        let t6 = link.ship(Csn(6), commit_group(6), DurabilityTier::MirrorAcked);
        let mut got = Vec::new();
        while got.len() < 2 {
            got.extend(next_records(&mirror));
        }
        // A lagging mirror acks only csn 5: the watermark must not pass 5,
        // so checkpoint truncation stays fenced below csn 6.
        mirror
            .send(
                Message::CommitAck {
                    txn: TxnId(105),
                    csn: Csn(5),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            t5.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::MirrorAcked)
        );
        assert_eq!(link.ack_watermark(), 5);
        assert!(t6.recv_timeout(Duration::from_millis(50)).is_err());
        mirror
            .send(
                Message::CommitAck {
                    txn: TxnId(106),
                    csn: Csn(6),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            t6.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::MirrorAcked)
        );
        assert_eq!(link.ack_watermark(), 6);
    }

    #[test]
    fn batch_knobs_split_oversized_runs_into_multiple_frames() {
        let (primary_side, mirror_side) = InProcTransport::pair();
        let link = MirrorLink::new(
            Arc::new(primary_side),
            &MirrorLossPolicy::ContinueVolatile,
            &Recorder::default(),
            Csn(1),
            ShipBatchConfig {
                max_records: 2,
                ..ShipBatchConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<CommitTicket> = (1..=6)
            .map(|c| link.ship(Csn(c), commit_group(c), DurabilityTier::MirrorAcked))
            .collect();
        let mut frames = 0;
        let mut got = 0;
        while got < 6 {
            let records = next_records(&mirror_side);
            assert!(
                records.len() <= 2,
                "frame exceeded max_records: {} records",
                records.len()
            );
            got += records.len();
            frames += 1;
        }
        assert!(frames >= 3, "six 1-record groups need ≥3 capped frames");
        mirror_side
            .send(
                Message::CommitAck {
                    txn: TxnId(106),
                    csn: Csn(6),
                }
                .encode(),
            )
            .unwrap();
        for t in &tickets {
            assert_eq!(
                t.recv_timeout(Duration::from_secs(5)).unwrap(),
                Ok(DurabilityTier::MirrorAcked)
            );
        }
    }

    #[test]
    fn disk_fsynced_tier_preappends_to_fallback_and_survives_mark_down() {
        let dir = std::env::temp_dir().join(format!(
            "rodain-tier-fallback-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let (primary_side, mirror_side) = InProcTransport::pair();
        let link = MirrorLink::new(
            Arc::new(primary_side),
            &MirrorLossPolicy::Contingency {
                dir: dir.clone(),
                segment_bytes: None,
            },
            &Recorder::default(),
            Csn(1),
            ShipBatchConfig::default(),
        )
        .unwrap();
        let mirror = Arc::new(mirror_side);
        // A DiskFsynced-tier group still ships over the wire (CSN density)
        // and resolves MirrorAcked on the ack; the fsync upgrade happens in
        // the engine's completer, not here.
        let t1 = link.ship(Csn(1), commit_group(1), DurabilityTier::DiskFsynced);
        let got = next_records(&mirror);
        assert_eq!(got.len(), 1);
        mirror
            .send(
                Message::CommitAck {
                    txn: TxnId(101),
                    csn: Csn(1),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            t1.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::MirrorAcked)
        );
        // After mark-down, an un-acked DiskFsynced group must resolve
        // through the fallback as DiskFsynced — flushed, not re-appended.
        let t2 = link.ship(Csn(2), commit_group(2), DurabilityTier::DiskFsynced);
        let _ = next_records(&mirror);
        link.mark_down();
        assert_eq!(
            t2.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::DiskFsynced)
        );
        // Degraded-mode ships keep resolving DiskFsynced via the fallback.
        let t3 = link.ship(Csn(3), commit_group(3), DurabilityTier::MirrorAcked);
        assert_eq!(
            t3.recv_timeout(Duration::from_secs(5)).unwrap(),
            Ok(DurabilityTier::DiskFsynced)
        );
        drop(link);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
