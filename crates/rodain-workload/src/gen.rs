//! Deterministic trace generation.

use crate::spec::{AccessPattern, WorkloadSpec};
use crate::trace::{Trace, TxnKind, TxnRequest};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Poisson-arrival trace generator.
///
/// Fully deterministic: the same [`WorkloadSpec`] always yields the same
/// [`Trace`], which is what lets EXPERIMENTS.md quote reproducible numbers.
pub struct TraceGenerator {
    spec: WorkloadSpec,
    rng: SmallRng,
    zipf: Option<ZipfState>,
}

/// Precomputed state for the YCSB-style Zipfian sampler (Gray et al.,
/// "Quickly Generating Billion-Record Synthetic Databases"): one O(n)
/// harmonic sum up front, then every draw is a closed-form O(1) map
/// from a uniform variate to a rank.
struct ZipfState {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> ZipfState {
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        ZipfState {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Map a uniform `u ∈ [0, 1)` to a rank in `0..n` (0 most popular).
    fn sample(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n > 1 && uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

impl TraceGenerator {
    /// Create a generator for `spec` (validated).
    ///
    /// # Panics
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    #[must_use]
    pub fn new(spec: WorkloadSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("invalid workload spec: {e}");
        }
        let rng = SmallRng::seed_from_u64(spec.seed);
        let zipf = match spec.access {
            AccessPattern::Zipfian { theta } => Some(ZipfState::new(spec.db_objects, theta)),
            _ => None,
        };
        TraceGenerator { spec, rng, zipf }
    }

    /// Exponential inter-arrival sample (ns) for the configured rate.
    fn next_interarrival_ns(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let secs = -u.ln() / self.spec.arrival_rate_tps;
        (secs * 1e9) as u64
    }

    /// Pick one object number according to the access pattern.
    fn pick_object(&mut self) -> u64 {
        let n = self.spec.db_objects;
        match self.spec.access {
            AccessPattern::Uniform => self.rng.gen_range(0..n),
            AccessPattern::Hotspot {
                hot_fraction,
                hot_probability,
            } => {
                let hot_n = ((n as f64 * hot_fraction) as u64).max(1);
                if self.rng.gen_bool(hot_probability.clamp(0.0, 1.0)) {
                    self.rng.gen_range(0..hot_n)
                } else if hot_n < n {
                    self.rng.gen_range(hot_n..n)
                } else {
                    self.rng.gen_range(0..n)
                }
            }
            AccessPattern::Zipfian { .. } => {
                let u: f64 = self.rng.gen();
                self.zipf.as_ref().expect("zipf state").sample(u)
            }
        }
    }

    /// Pick `count` *distinct* objects.
    fn pick_objects(&mut self, count: u32) -> Vec<u64> {
        let mut objects = Vec::with_capacity(count as usize);
        let mut guard = 0;
        while objects.len() < count as usize {
            let candidate = self.pick_object();
            if !objects.contains(&candidate) {
                objects.push(candidate);
            } else {
                guard += 1;
                if guard > 10_000 {
                    // Degenerate tiny database: accept duplicates' absence
                    // by shrinking the set.
                    break;
                }
            }
        }
        objects
    }

    /// Generate the full session trace.
    #[must_use]
    pub fn generate(mut self) -> Trace {
        let spec = self.spec.clone();
        let mut requests = Vec::with_capacity(spec.count as usize);
        let mut clock_ns = 0u64;
        for seq in 0..spec.count {
            clock_ns += self.next_interarrival_ns();
            let roll: f64 = self.rng.gen();
            let (kind, reads, deadline_ms) = if roll < spec.write_fraction {
                (
                    TxnKind::Update,
                    spec.reads_per_update_txn,
                    Some(spec.write_deadline_ms),
                )
            } else if roll < spec.write_fraction + spec.non_rt_fraction {
                (TxnKind::NonRealTime, spec.reads_per_read_txn, None)
            } else {
                (
                    TxnKind::ReadOnly,
                    spec.reads_per_read_txn,
                    Some(spec.read_deadline_ms),
                )
            };
            let relative_deadline_ns = deadline_ms.map(|ms| {
                let base = ms as f64 * 1e6;
                let jitter = spec.deadline_jitter;
                let factor = if jitter > 0.0 {
                    1.0 + self.rng.gen_range(-jitter..jitter)
                } else {
                    1.0
                };
                (base * factor) as u64
            });
            requests.push(TxnRequest {
                seq,
                arrival_ns: clock_ns,
                kind,
                relative_deadline_ns,
                objects: self.pick_objects(reads),
            });
        }
        Trace { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let spec = WorkloadSpec::default();
        let a = TraceGenerator::new(spec.clone()).generate();
        let b = TraceGenerator::new(spec).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_trace() {
        let a = TraceGenerator::new(WorkloadSpec::default()).generate();
        let b = TraceGenerator::new(WorkloadSpec {
            seed: 42,
            ..WorkloadSpec::default()
        })
        .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn arrival_rate_is_respected() {
        let spec = WorkloadSpec {
            count: 20_000,
            arrival_rate_tps: 500.0,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        let duration_s = trace.duration_ns() as f64 / 1e9;
        let rate = trace.len() as f64 / duration_s;
        assert!(
            (rate - 500.0).abs() < 25.0,
            "empirical rate {rate} too far from 500"
        );
        // Arrivals are sorted.
        for w in trace.requests.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let spec = WorkloadSpec {
            count: 20_000,
            write_fraction: 0.8,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        assert!((trace.update_fraction() - 0.8).abs() < 0.02);
    }

    #[test]
    fn zero_write_fraction_is_all_reads() {
        let spec = WorkloadSpec {
            count: 1_000,
            write_fraction: 0.0,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        assert_eq!(trace.update_fraction(), 0.0);
        assert!(trace
            .requests
            .iter()
            .all(|r| r.kind == TxnKind::ReadOnly && r.objects.len() == 4));
    }

    #[test]
    fn objects_are_distinct_and_in_range() {
        let spec = WorkloadSpec {
            count: 2_000,
            db_objects: 50,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        for r in &trace.requests {
            let mut sorted = r.objects.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), r.objects.len(), "duplicates in {r:?}");
            assert!(r.objects.iter().all(|&o| o < 50));
        }
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let spec = WorkloadSpec {
            count: 5_000,
            db_objects: 1_000,
            access: AccessPattern::Hotspot {
                hot_fraction: 0.01,
                hot_probability: 0.9,
            },
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        let total: usize = trace.requests.iter().map(|r| r.objects.len()).sum();
        let hot: usize = trace
            .requests
            .iter()
            .flat_map(|r| &r.objects)
            .filter(|&&o| o < 10)
            .count();
        let share = hot as f64 / total as f64;
        assert!(share > 0.6, "hot share {share} too small");
    }

    #[test]
    fn non_rt_fraction_produces_deadline_free_txns() {
        let spec = WorkloadSpec {
            count: 5_000,
            write_fraction: 0.1,
            non_rt_fraction: 0.2,
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        let non_rt = trace
            .requests
            .iter()
            .filter(|r| r.kind == TxnKind::NonRealTime)
            .count() as f64
            / trace.len() as f64;
        assert!((non_rt - 0.2).abs() < 0.03);
        assert!(trace
            .requests
            .iter()
            .filter(|r| r.kind == TxnKind::NonRealTime)
            .all(|r| r.relative_deadline_ns.is_none()));
    }

    #[test]
    fn zipfian_lower_ranks_dominate() {
        let spec = WorkloadSpec {
            count: 5_000,
            db_objects: 10_000,
            access: AccessPattern::Zipfian { theta: 0.9 },
            ..WorkloadSpec::default()
        };
        let trace = TraceGenerator::new(spec).generate();
        let total: usize = trace.requests.iter().map(|r| r.objects.len()).sum();
        let share_below = |cut: u64| {
            trace
                .requests
                .iter()
                .flat_map(|r| &r.objects)
                .filter(|&&o| o < cut)
                .count() as f64
                / total as f64
        };
        // Under uniform access the top 1% / 10% of ranks would draw
        // ~1% / ~10%; Zipf(0.9) concentrates far more mass there.
        assert!(share_below(100) > 0.3, "top-1% share {}", share_below(100));
        assert!(
            share_below(1_000) > 0.5,
            "top-10% share {}",
            share_below(1_000)
        );
        assert!(trace
            .requests
            .iter()
            .flat_map(|r| &r.objects)
            .all(|&o| o < 10_000));
    }

    #[test]
    fn zipfian_theta_controls_skew() {
        let trace_for = |theta| {
            TraceGenerator::new(WorkloadSpec {
                count: 4_000,
                db_objects: 1_000,
                access: AccessPattern::Zipfian { theta },
                ..WorkloadSpec::default()
            })
            .generate()
        };
        let head_share = |trace: &crate::Trace| {
            let total: usize = trace.requests.iter().map(|r| r.objects.len()).sum();
            trace
                .requests
                .iter()
                .flat_map(|r| &r.objects)
                .filter(|&&o| o < 10)
                .count() as f64
                / total as f64
        };
        let mild = head_share(&trace_for(0.2));
        let steep = head_share(&trace_for(0.95));
        assert!(
            steep > mild + 0.1,
            "skew should grow with theta: {mild} vs {steep}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid workload spec")]
    fn invalid_spec_panics() {
        let _ = TraceGenerator::new(WorkloadSpec {
            write_fraction: 2.0,
            ..WorkloadSpec::default()
        });
    }
}
