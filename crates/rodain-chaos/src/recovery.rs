//! Recovery-focused chaos: crash the node *during* replay or
//! checkpointing and verify the dirty-log contract (DESIGN.md §13).
//!
//! The harness in [`crate::harness`] kills nodes *between* commits; this
//! module attacks the recovery machinery itself. Its scenarios (see
//! `tests/recovery_scenarios.rs`) pin three properties:
//!
//! 1. **Torn tails truncate, mid-log corruption fails loudly** — a crash
//!    mid-append leaves a damaged final frame that recovery drops
//!    silently; damage anywhere else must abort with segment + offset.
//! 2. **Mid-replay crashes converge** — a recovery process that dies
//!    after applying a prefix ([`rodain_log::ReplayOptions`]
//!    `stop_after_commits`) and is restarted from scratch reaches exactly
//!    the state an uninterrupted replay reaches.
//! 3. **Mid-checkpoint crashes keep the previous snapshot** — a crash at
//!    any [`rodain_log::SnapshotCrashPoint`] never exposes a
//!    half-written snapshot; checkpoint-accelerated recovery falls back
//!    to the prior one plus the log tail.
//!
//! [`SeededLog`] is the deterministic workload generator behind all of
//! them: the same seed always yields the same reordered record stream and
//! the same expected committed state, so every failing scenario reproduces
//! with `CHAOS_SEED=<seed> cargo test -p rodain-chaos`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rodain_log::{LogRecord, Lsn, RecordKind};
use rodain_occ::Csn;
use rodain_store::{ObjectId, Store, Ts, TxnId, Value};
use std::collections::BTreeMap;

/// A deterministic committed workload rendered as reordered log records,
/// paired with the exact store contents a faithful recovery must rebuild.
#[derive(Clone, Debug)]
pub struct SeededLog {
    /// The records, in reordered (appendable) order: each transaction's
    /// writes immediately precede its commit or abort, commits ascend by
    /// CSN.
    pub records: Vec<LogRecord>,
    /// Expected integer value of every object after replaying all commits.
    pub expected: BTreeMap<u64, i64>,
    /// Committed transactions in the stream.
    pub commits: u64,
    /// Highest CSN committed.
    pub max_csn: Csn,
}

impl SeededLog {
    /// Generate `txns` transactions over `objects` objects from `seed`.
    /// Every ninth transaction aborts after shipping its writes, and the
    /// stream ends with one in-flight transaction (writes, no commit) —
    /// the tail a crash leaves behind. The same `(seed, txns, objects)`
    /// always yields the same stream and the same expected state.
    #[must_use]
    pub fn generate(seed: u64, txns: u64, objects: u64) -> SeededLog {
        assert!(objects >= 4, "need at least 4 objects for distinct writes");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut records = Vec::new();
        let mut expected = BTreeMap::new();
        let mut lsn = 0u64;
        let mut csn = 0u64;
        for t in 1..=txns {
            let n = rng.gen_range(1..=3u64);
            let start = rng.gen_range(0..objects);
            let mut writes = Vec::new();
            for w in 0..n {
                // Consecutive oids modulo the keyspace: distinct within
                // the transaction, so install order within it never
                // matters (equal-timestamp installs are idempotent).
                let oid = (start + w) % objects;
                let val = rng.gen_range(-1_000_000..=1_000_000i64);
                lsn += 1;
                records.push(LogRecord {
                    lsn: Lsn(lsn),
                    txn: TxnId(t),
                    kind: RecordKind::Write {
                        oid: ObjectId(oid),
                        image: Value::Int(val),
                    },
                });
                writes.push((oid, val));
            }
            lsn += 1;
            if t % 9 == 0 {
                records.push(LogRecord {
                    lsn: Lsn(lsn),
                    txn: TxnId(t),
                    kind: RecordKind::Abort,
                });
            } else {
                csn += 1;
                records.push(LogRecord {
                    lsn: Lsn(lsn),
                    txn: TxnId(t),
                    kind: RecordKind::Commit {
                        csn: Csn(csn),
                        ser_ts: Ts(csn * 10),
                        n_writes: n as u32,
                    },
                });
                for (oid, val) in writes {
                    expected.insert(oid, val);
                }
            }
        }
        // The in-flight tail: a transaction interrupted before its commit
        // record. Recovery must discard it.
        lsn += 1;
        records.push(LogRecord {
            lsn: Lsn(lsn),
            txn: TxnId(txns + 1),
            kind: RecordKind::Write {
                oid: ObjectId(0),
                image: Value::Int(i64::MIN),
            },
        });
        SeededLog {
            records,
            expected,
            commits: csn,
            max_csn: Csn(csn),
        }
    }

    /// Compare `store` against the expected committed state. Returns one
    /// violation string per mismatch (empty = the recovered store is
    /// exactly the pre-crash committed state: nothing lost, no phantoms).
    #[must_use]
    pub fn check_store(&self, store: &Store, context: &str) -> Vec<String> {
        self.check_store_with_extras(store, &[], context)
    }

    /// [`SeededLog::check_store`] with additional `(oid, value)` pairs the
    /// scenario committed on top of the seeded workload.
    #[must_use]
    pub fn check_store_with_extras(
        &self,
        store: &Store,
        extras: &[(u64, i64)],
        context: &str,
    ) -> Vec<String> {
        let mut expected = self.expected.clone();
        for &(oid, val) in extras {
            expected.insert(oid, val);
        }
        let mut violations = Vec::new();
        for (&oid, &val) in &expected {
            match store.read(ObjectId(oid)) {
                Some((Value::Int(got), _)) if got == val => {}
                other => violations.push(format!(
                    "{context}: object {oid} expected {val}, found {other:?}"
                )),
            }
        }
        if store.len() != expected.len() {
            violations.push(format!(
                "{context}: store holds {} objects, committed state has {} (phantom or lost install)",
                store.len(),
                expected.len()
            ));
        }
        violations
    }
}

/// The seeds the recovery scenarios run under by default; `CHAOS_SEED`
/// overrides them with a single pinned seed, exactly as for the pair
/// harness (see `CONTRIBUTING.md`).
#[must_use]
pub fn scenario_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(raw) => vec![raw
            .trim()
            .parse()
            .expect("CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![3, 11, 4099],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_log_and_expectation() {
        let a = SeededLog::generate(77, 120, 16);
        let b = SeededLog::generate(77, 120, 16);
        assert_eq!(a.records, b.records);
        assert_eq!(a.expected, b.expected);
        assert!(a.commits > 0 && a.commits < 120, "aborts must thin commits");
        assert_eq!(a.max_csn, Csn(a.commits));
    }

    #[test]
    fn check_store_catches_loss_and_phantoms() {
        let log = SeededLog::generate(5, 30, 8);
        let store = Store::new();
        for (&oid, &val) in &log.expected {
            store.install(ObjectId(oid), Value::Int(val), Ts(oid + 1));
        }
        assert!(log.check_store(&store, "full").is_empty());
        // A lost install is reported.
        let (&first, _) = log.expected.iter().next().unwrap();
        store.install(ObjectId(first), Value::Null, Ts(1_000_000));
        assert!(!log.check_store(&store, "damaged").is_empty());
    }
}
