//! CCABLATE: the concurrency-control family under hotspot contention —
//! OCC-DATI vs OCC-TI vs OCC-DA vs OCC-BC vs 2PL-HP.
//!
//! `cargo run -p rodain-bench --release --bin cc_ablation [-- --quick]`

use rodain_bench::experiments::{cc_ablation, SweepOptions};

fn main() {
    let table = cc_ablation(SweepOptions::from_args());
    table.print();
    println!("csv: {:?}", table.write_csv("cc_ablation").unwrap());
}
