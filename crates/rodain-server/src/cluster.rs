//! The cluster-node backend: a [`ShardedRodain`] holding only the shards
//! this node owns, plus the versioned [`ShardMap`] the front-end routes
//! by.
//!
//! A cluster node is built with engines for *every* shard and then
//! detaches ([`ShardedRodain::take_shard`]) the ones assigned elsewhere,
//! so ownership is simply "is an engine seated for this shard". The
//! front-end consults [`ClusterShards::route_check`] before submitting:
//! an anchor routing to a detached shard is answered
//! [`crate::Outcome::WrongShard`] with the node's current map epoch, and
//! the client refetches the map (`ClusterMap` op) and retries against
//! the owner. Migration cutover installs a higher-epoch map
//! ([`ClusterShards::install_map`]); stale maps are rejected so a
//! delayed installer can never roll ownership backwards.

use parking_lot::RwLock;
use rodain_obs::{Counter, Gauge, Recorder};
use rodain_shard::{ShardMap, ShardedRodain};
use rodain_store::ObjectId;
use std::sync::Arc;

/// The shard placement state of one cluster node: locally-seated engines
/// plus the epoch-numbered cluster map (see `DESIGN.md` §16).
pub struct ClusterShards {
    local: Arc<ShardedRodain>,
    map: RwLock<ShardMap>,
    recorder: Recorder,
    epoch_gauge: Gauge,
    redirects: Counter,
}

impl ClusterShards {
    /// Wrap `local` (with non-owned shards already taken) as a cluster
    /// node holding `map`. Cluster routing metrics register on
    /// `recorder` and ride along in [`ClusterShards::metrics`].
    #[must_use]
    pub fn new(local: Arc<ShardedRodain>, map: ShardMap) -> Arc<ClusterShards> {
        let recorder = Recorder::new();
        let epoch_gauge = recorder.gauge("cluster_shard_map_epoch");
        let redirects = recorder.counter("cluster_redirects_total");
        epoch_gauge.set(map.epoch as i64);
        Arc::new(ClusterShards {
            local,
            map: RwLock::new(map),
            recorder,
            epoch_gauge,
            redirects,
        })
    }

    /// The locally-seated engines.
    #[must_use]
    pub fn local(&self) -> &Arc<ShardedRodain> {
        &self.local
    }

    /// The node's current shard map (a cheap clone).
    #[must_use]
    pub fn map(&self) -> ShardMap {
        self.map.read().clone()
    }

    /// The node's current map epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.map.read().epoch
    }

    /// Install `map` if it is newer than the current one. Returns whether
    /// it was installed; equal or older epochs are ignored (idempotent
    /// broadcast, and a delayed installer cannot regress ownership).
    pub fn install_map(&self, map: ShardMap) -> bool {
        let mut cur = self.map.write();
        if map.epoch <= cur.epoch {
            return false;
        }
        self.epoch_gauge.set(map.epoch as i64);
        *cur = map;
        true
    }

    /// Whether this node currently seats an engine for `shard`.
    #[must_use]
    pub fn owns(&self, shard: usize) -> bool {
        self.local.engine(shard).is_some()
    }

    /// Route check for an anchored request: `None` when this node owns
    /// the anchor's shard, otherwise `Some(epoch)` for a
    /// `WrongShard { epoch }` answer (counted in
    /// `cluster_redirects_total`).
    #[must_use]
    pub fn route_check(&self, anchor: ObjectId) -> Option<u64> {
        let shard = self.local.shard_of(anchor);
        if self.owns(shard) {
            return None;
        }
        self.redirects.inc();
        Some(self.epoch())
    }

    /// The node's cluster-routing recorder (epoch gauge, redirects).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Local engine metrics merged with the cluster-routing metrics.
    #[must_use]
    pub fn metrics(&self) -> rodain_db::MetricsSnapshot {
        let mut snap = self.local.metrics();
        snap.merge(&self.recorder.snapshot());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(shards: usize, own: &[usize]) -> Arc<ClusterShards> {
        let local = Arc::new(
            ShardedRodain::builder()
                .shards(shards)
                .workers_per_shard(1)
                .build()
                .unwrap(),
        );
        for s in 0..shards {
            if !own.contains(&s) {
                local.take_shard(s);
            }
        }
        let map = ShardMap::single(shards, "127.0.0.1:1", "127.0.0.1:2");
        ClusterShards::new(local, map)
    }

    #[test]
    fn route_check_redirects_only_non_owned() {
        let cluster = node(4, &[0, 2]);
        let router = cluster.local().router();
        let mut owned_seen = false;
        let mut foreign_seen = false;
        for raw in 0..64u64 {
            let oid = ObjectId(raw);
            let shard = router.route(oid);
            match cluster.route_check(oid) {
                None => {
                    assert!(cluster.owns(shard));
                    owned_seen = true;
                }
                Some(epoch) => {
                    assert!(!cluster.owns(shard));
                    assert_eq!(epoch, 1);
                    foreign_seen = true;
                }
            }
        }
        assert!(owned_seen && foreign_seen);
        let snap = cluster.metrics();
        assert!(snap.counter("cluster_redirects_total").unwrap() > 0);
    }

    #[test]
    fn install_map_is_monotone() {
        let cluster = node(2, &[0, 1]);
        let newer = cluster
            .map()
            .reassigned(1, rodain_shard::ShardOwner {
                client_addr: "127.0.0.1:3".into(),
                peer_addr: "127.0.0.1:4".into(),
            });
        assert_eq!(newer.epoch, 2);
        assert!(cluster.install_map(newer.clone()));
        // Same epoch again: rejected.
        assert!(!cluster.install_map(newer));
        // Older: rejected.
        let stale = ShardMap::single(2, "127.0.0.1:1", "127.0.0.1:2");
        assert!(!cluster.install_map(stale));
        assert_eq!(cluster.epoch(), 2);
        let snap = cluster.metrics();
        assert_eq!(snap.gauge("cluster_shard_map_epoch"), Some(2));
    }
}
