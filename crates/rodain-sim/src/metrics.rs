//! Simulation metrics.

use rodain_occ::CcStats;

/// Latency summary over a set of samples (nanoseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl LatencyStats {
    /// Summarize `samples` (consumed; sorted internally).
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        let pct = |p: f64| -> u64 {
            let idx = ((samples.len() as f64 - 1.0) * p).round() as usize;
            samples[idx]
        };
        LatencyStats {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: *samples.last().expect("non-empty"),
        }
    }
}

/// Outcome counters and latency distributions of one simulated session.
#[derive(Clone, Debug, Default)]
pub struct SimMetrics {
    /// Transactions in the trace (offered load).
    pub offered: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted: deadline expired (in queue, mid-execution, or no slack to
    /// restart after a conflict-free abort).
    pub missed_deadline: u64,
    /// Aborted: concurrency-control restart with no slack left.
    pub missed_conflict: u64,
    /// Aborted: admission denied by the overload manager.
    pub missed_admission: u64,
    /// Aborted: evicted by a more urgent arrival at the active limit.
    pub missed_evicted: u64,
    /// Aborted: arrived while the node (pair) was down after a failure.
    pub missed_unavailable: u64,
    /// Concurrency-control restarts that were retried (not fatal).
    pub restarts: u64,
    /// Transactions that committed after their deadline (soft lateness;
    /// firm transactions never reach this).
    pub late_commits: u64,
    /// Non-real-time transactions offered.
    pub offered_non_rt: u64,
    /// Non-real-time transactions committed (the modified-EDF reservation
    /// exists to keep this from starving under real-time load).
    pub committed_non_rt: u64,
    /// End-to-end response times of committed transactions.
    pub response: LatencyStats,
    /// Commit-wait times (validation accept → durable/acknowledged).
    pub commit_wait: LatencyStats,
    /// Response times of committed non-real-time transactions — the
    /// starvation indicator the EDF reservation exists to bound.
    pub non_rt_response: LatencyStats,
    /// Controller counters.
    pub cc: CcStats,
    /// Physical log flushes on the primary (single-node sync mode).
    pub disk_flushes: u64,
    /// Largest mirror spool backlog observed (groups).
    pub mirror_backlog_max: u64,
    /// Log records generated.
    pub log_records: u64,
    /// Log bytes shipped/stored (approximate encoded size).
    pub log_bytes: u64,
    /// First commit after the injected failure (ns), if any.
    pub first_commit_after_failure_ns: Option<u64>,
    /// Last commit before the injected failure (ns), if any.
    pub last_commit_before_failure_ns: Option<u64>,
    /// Simulated session length (ns).
    pub sim_end_ns: u64,
}

impl SimMetrics {
    /// Total missed (aborted) transactions.
    #[must_use]
    pub fn missed(&self) -> u64 {
        self.missed_deadline
            + self.missed_conflict
            + self.missed_admission
            + self.missed_evicted
            + self.missed_unavailable
    }

    /// The paper's headline metric: "the transaction miss ratio, which
    /// represents the fraction of transactions that were aborted".
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.missed() as f64 / self.offered as f64
    }

    /// Completion rate of non-real-time transactions (1.0 when none were
    /// offered).
    #[must_use]
    pub fn non_rt_completion(&self) -> f64 {
        if self.offered_non_rt == 0 {
            return 1.0;
        }
        self.committed_non_rt as f64 / self.offered_non_rt as f64
    }

    /// Unavailability window around an injected failure: last commit
    /// before → first commit after.
    #[must_use]
    pub fn unavailability_ns(&self) -> Option<u64> {
        match (
            self.last_commit_before_failure_ns,
            self.first_commit_after_failure_ns,
        ) {
            (Some(before), Some(after)) => Some(after.saturating_sub(before)),
            _ => None,
        }
    }
}

/// Mean ± spread across repetitions (the paper: "Every test session …
/// is repeated at least 20 times. The reported values are the means").
#[derive(Clone, Debug, Default)]
pub struct AggregateMetrics {
    /// Sessions aggregated.
    pub sessions: u64,
    /// Mean miss ratio.
    pub miss_ratio_mean: f64,
    /// Min/max miss ratio across repetitions.
    pub miss_ratio_min: f64,
    /// See `miss_ratio_min`.
    pub miss_ratio_max: f64,
    /// Mean abort-reason shares (of offered load).
    pub deadline_share: f64,
    /// See `deadline_share`.
    pub conflict_share: f64,
    /// See `deadline_share`.
    pub admission_share: f64,
    /// Mean restarts per offered transaction.
    pub restart_rate: f64,
    /// Mean commit-wait p50 (ns).
    pub commit_wait_p50_ns: f64,
    /// Mean commit-wait p95 (ns).
    pub commit_wait_p95_ns: f64,
    /// Mean commit-wait p99 (ns).
    pub commit_wait_p99_ns: f64,
    /// Mean response p50 (ns).
    pub response_p50_ns: f64,
    /// Mean response p95 (ns).
    pub response_p95_ns: f64,
    /// Mean response p99 (ns).
    pub response_p99_ns: f64,
}

impl AggregateMetrics {
    /// Aggregate repetitions.
    #[must_use]
    pub fn from_sessions(sessions: &[SimMetrics]) -> AggregateMetrics {
        if sessions.is_empty() {
            return AggregateMetrics::default();
        }
        let n = sessions.len() as f64;
        let ratios: Vec<f64> = sessions.iter().map(SimMetrics::miss_ratio).collect();
        let mean = |f: &dyn Fn(&SimMetrics) -> f64| sessions.iter().map(f).sum::<f64>() / n;
        AggregateMetrics {
            sessions: sessions.len() as u64,
            miss_ratio_mean: ratios.iter().sum::<f64>() / n,
            miss_ratio_min: ratios.iter().copied().fold(f64::INFINITY, f64::min),
            miss_ratio_max: ratios.iter().copied().fold(0.0, f64::max),
            deadline_share: mean(&|s| s.missed_deadline as f64 / s.offered.max(1) as f64),
            conflict_share: mean(&|s| s.missed_conflict as f64 / s.offered.max(1) as f64),
            admission_share: mean(&|s| {
                (s.missed_admission + s.missed_evicted) as f64 / s.offered.max(1) as f64
            }),
            restart_rate: mean(&|s| s.restarts as f64 / s.offered.max(1) as f64),
            commit_wait_p50_ns: mean(&|s| s.commit_wait.p50_ns as f64),
            commit_wait_p95_ns: mean(&|s| s.commit_wait.p95_ns as f64),
            commit_wait_p99_ns: mean(&|s| s.commit_wait.p99_ns as f64),
            response_p50_ns: mean(&|s| s.response.p50_ns as f64),
            response_p95_ns: mean(&|s| s.response.p95_ns as f64),
            response_p99_ns: mean(&|s| s.response.p99_ns as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_percentiles() {
        let stats = LatencyStats::from_samples((1..=100u64).collect());
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50_ns, 51); // index round((99)*0.50) = 50 → value 51
        assert_eq!(stats.p95_ns, 95);
        assert_eq!(stats.p99_ns, 99);
        assert_eq!(stats.max_ns, 100);
        assert!((stats.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_are_zero() {
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
    }

    #[test]
    fn miss_ratio_sums_reasons() {
        let m = SimMetrics {
            offered: 100,
            committed: 90,
            missed_deadline: 4,
            missed_conflict: 3,
            missed_admission: 2,
            missed_evicted: 1,
            ..SimMetrics::default()
        };
        assert_eq!(m.missed(), 10);
        assert!((m.miss_ratio() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn zero_offered_has_zero_ratio() {
        assert_eq!(SimMetrics::default().miss_ratio(), 0.0);
    }

    #[test]
    fn unavailability_window() {
        let mut m = SimMetrics::default();
        assert_eq!(m.unavailability_ns(), None);
        m.last_commit_before_failure_ns = Some(1_000);
        m.first_commit_after_failure_ns = Some(5_000);
        assert_eq!(m.unavailability_ns(), Some(4_000));
    }

    #[test]
    fn aggregate_means() {
        let mk = |missed: u64| SimMetrics {
            offered: 100,
            committed: 100 - missed,
            missed_admission: missed,
            ..SimMetrics::default()
        };
        let agg = AggregateMetrics::from_sessions(&[mk(10), mk(20)]);
        assert_eq!(agg.sessions, 2);
        assert!((agg.miss_ratio_mean - 0.15).abs() < 1e-12);
        assert!((agg.miss_ratio_min - 0.10).abs() < 1e-12);
        assert!((agg.miss_ratio_max - 0.20).abs() < 1e-12);
        assert!((agg.admission_share - 0.15).abs() < 1e-12);
    }
}
